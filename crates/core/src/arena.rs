//! Owner-backed storage for index arenas.
//!
//! Every flat buffer inside the index (`SketchStore` arenas, packed posting
//! words and block metadata, raw posting slot lists) is stored as an
//! [`ArenaVec<T>`]: either an owned `Vec<T>` built in memory, or a borrowed
//! `&'static [T]` pointing straight into a loaded arena file (see the
//! [`persist`](crate::persist) module). The borrowed form is what makes
//! loading zero-copy — no per-record decode, no re-encoding of posting
//! blocks — while the owned form is what every build path produces.
//!
//! The enum behaves like a slice for reads (`Deref<Target = [T]>`) and
//! promotes itself to an owned `Vec` on first mutation ([`ArenaVec::to_mut`]
//! or `DerefMut`), so insert-after-load takes one bulk copy of the touched
//! arena and is bit-identical to insert-after-build from then on. Equality
//! is by content, not by owner, so a loaded index compares equal to the
//! index that was saved.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A flat buffer that is either owned (`Vec<T>`) or borrowed zero-copy from
/// a leaked arena-file buffer (`&'static [T]`).
pub enum ArenaVec<T: 'static> {
    /// Heap-owned storage; what every build and mutation path produces.
    Owned(Vec<T>),
    /// Zero-copy view into a loaded arena file. The referent is a buffer
    /// intentionally leaked for the process lifetime by the load path, so
    /// the `'static` borrow is sound and costs no per-element work.
    Borrowed(&'static [T]),
}

impl<T: 'static> ArenaVec<T> {
    /// The stored elements as a slice, whichever variant backs them.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            ArenaVec::Owned(vec) => vec.as_slice(),
            ArenaVec::Borrowed(slice) => slice,
        }
    }

    /// Heap bytes reserved by the owned variant (capacity-based); zero for
    /// borrowed storage, whose bytes belong to the arena file buffer.
    #[inline]
    pub fn owned_capacity_bytes(&self) -> usize {
        match self {
            ArenaVec::Owned(vec) => vec.capacity() * std::mem::size_of::<T>(),
            ArenaVec::Borrowed(_) => 0,
        }
    }

    /// Content bytes served zero-copy from a loaded arena file; zero for
    /// owned storage. For a freshly loaded index this equals the exact
    /// byte length of the corresponding file section.
    #[inline]
    pub fn borrowed_bytes(&self) -> usize {
        match self {
            ArenaVec::Owned(_) => 0,
            ArenaVec::Borrowed(slice) => std::mem::size_of_val(*slice),
        }
    }

    /// Whether the storage still borrows from a loaded arena file.
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        matches!(self, ArenaVec::Borrowed(_))
    }
}

impl<T: Clone + 'static> ArenaVec<T> {
    /// Mutable access, promoting borrowed storage to an owned copy first.
    ///
    /// The promotion is a single bulk copy of this arena only; other arenas
    /// of a loaded index keep borrowing from the file buffer.
    #[inline]
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let ArenaVec::Borrowed(slice) = self {
            *self = ArenaVec::Owned(slice.to_vec());
        }
        match self {
            ArenaVec::Owned(vec) => vec,
            ArenaVec::Borrowed(_) => unreachable!("promoted above"),
        }
    }
}

impl<T: 'static> Deref for ArenaVec<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Clone + 'static> DerefMut for ArenaVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.to_mut().as_mut_slice()
    }
}

impl<T: 'static> From<Vec<T>> for ArenaVec<T> {
    #[inline]
    fn from(vec: Vec<T>) -> Self {
        ArenaVec::Owned(vec)
    }
}

impl<T: 'static> Default for ArenaVec<T> {
    fn default() -> Self {
        ArenaVec::Owned(Vec::new())
    }
}

impl<T: Clone + 'static> Clone for ArenaVec<T> {
    fn clone(&self) -> Self {
        match self {
            ArenaVec::Owned(vec) => ArenaVec::Owned(vec.clone()),
            // Cloning a borrow is free: the file buffer lives for the
            // process lifetime, so both clones can keep borrowing it.
            ArenaVec::Borrowed(slice) => ArenaVec::Borrowed(slice),
        }
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for ArenaVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// Content equality: a loaded (borrowed) arena compares equal to the owned
/// arena it was saved from.
impl<T: PartialEq + 'static> PartialEq for ArenaVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq + 'static> Eq for ArenaVec<T> {}

impl<T: Serialize + 'static> Serialize for ArenaVec<T> {
    fn to_json_value(&self) -> serde::json::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: 'static> Deserialize for ArenaVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrowed_equals_owned_with_same_content() {
        let owned: ArenaVec<u32> = vec![1, 2, 3].into();
        let leaked: &'static [u32] = Box::leak(vec![1, 2, 3].into_boxed_slice());
        let borrowed = ArenaVec::Borrowed(leaked);
        assert_eq!(owned, borrowed);
        assert_ne!(owned, ArenaVec::Owned(vec![1, 2]));
    }

    #[test]
    fn to_mut_promotes_borrowed_storage_once() {
        let leaked: &'static [u32] = Box::leak(vec![7, 8].into_boxed_slice());
        let mut arena = ArenaVec::Borrowed(leaked);
        assert!(arena.is_borrowed());
        assert_eq!(arena.borrowed_bytes(), 8);
        assert_eq!(arena.owned_capacity_bytes(), 0);

        arena.to_mut().push(9);
        assert!(!arena.is_borrowed());
        assert_eq!(&arena[..], &[7, 8, 9]);
        assert_eq!(arena.borrowed_bytes(), 0);
        assert!(arena.owned_capacity_bytes() >= 3 * 4);
        // The leaked original is untouched.
        assert_eq!(leaked, &[7, 8]);
    }

    #[test]
    fn deref_mut_also_promotes() {
        let leaked: &'static [u32] = Box::leak(vec![3, 1].into_boxed_slice());
        let mut arena = ArenaVec::Borrowed(leaked);
        arena.sort_unstable();
        assert_eq!(&arena[..], &[1, 3]);
        assert!(!arena.is_borrowed());
    }
}
