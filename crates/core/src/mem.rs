//! Per-component memory accounting for built and loaded indexes.
//!
//! Every storage component reports a [`MemUsage`] breakdown: content bytes
//! per arena plus how much of that content is served zero-copy from a
//! loaded arena file ([`MemUsage::borrowed_bytes`]). For a freshly loaded
//! index the borrowed total equals the summed byte length of the file's
//! arena sections exactly — the bench and the persistence tests use that
//! equality to verify the load path really borrows instead of decoding.
//!
//! All figures are content sizes (`len * size_of::<T>()`), not heap
//! capacities, so built and loaded indexes are directly comparable.

use serde::Serialize;

/// Byte-level breakdown of an index component's storage.
///
/// Component figures measure content; [`borrowed_bytes`](Self::borrowed_bytes)
/// measures, across all components, the subset backed zero-copy by a loaded
/// arena file (zero for a built index, and shrinking as post-load inserts
/// promote arenas to owned copies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MemUsage {
    /// Concatenated G-KMV hash values (CSR data array), in bytes.
    pub hash_arena_bytes: usize,
    /// CSR offsets delimiting each slot's hash run, in bytes.
    pub hash_offsets_bytes: usize,
    /// Fixed-stride per-record element-buffer bitmaps, in bytes.
    pub buffer_arena_bytes: usize,
    /// Per-record metadata (max hash, sizes, saturation flags), in bytes.
    pub meta_bytes: usize,
    /// Record-id ↔ slot permutations, in bytes.
    pub permutation_bytes: usize,
    /// Estimated `hash_df` document-frequency map content (key + value
    /// bytes per entry; hashing overhead excluded), in bytes.
    pub hash_df_bytes: usize,
    /// Raw (uncompressed `u32` slot list) posting content, in bytes.
    pub postings_raw_bytes: usize,
    /// Packed posting payload words (gap-packed + bitmap blocks), in bytes.
    pub postings_packed_bytes: usize,
    /// Packed posting block descriptors, in bytes.
    pub posting_block_meta_bytes: usize,
    /// Subset of all the above served zero-copy from a loaded arena file.
    pub borrowed_bytes: usize,
    /// Bytes belonging to shards that several accounted indexes share
    /// behind one `Arc` — counted **once** in the component fields and
    /// recorded here for every additional sighting, so summing
    /// [`MemUsage::total_bytes`] over a snapshot pair never double-counts
    /// copy-on-write storage. Zero when accounting a single index; see
    /// `GbKmvIndex::mem_usage_shared`.
    pub shared_bytes: usize,
}

impl MemUsage {
    /// Total content bytes across every component.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.hash_arena_bytes
            + self.hash_offsets_bytes
            + self.buffer_arena_bytes
            + self.meta_bytes
            + self.permutation_bytes
            + self.hash_df_bytes
            + self.postings_raw_bytes
            + self.postings_packed_bytes
            + self.posting_block_meta_bytes
    }

    /// Content bytes that live in (or, after a load, are borrowed from) the
    /// persisted arena sections: everything except the `hash_df` map, which
    /// is the one structure the loader rebuilds rather than borrows. On a
    /// freshly loaded index this equals
    /// [`borrowed_bytes`](Self::borrowed_bytes) exactly — the zero-copy
    /// equality the persistence bench and tests assert.
    #[must_use]
    pub fn arena_content_bytes(&self) -> usize {
        self.total_bytes() - self.hash_df_bytes
    }

    /// Accumulates another breakdown into this one, field by field.
    pub(crate) fn add(&mut self, other: &MemUsage) {
        self.hash_arena_bytes += other.hash_arena_bytes;
        self.hash_offsets_bytes += other.hash_offsets_bytes;
        self.buffer_arena_bytes += other.buffer_arena_bytes;
        self.meta_bytes += other.meta_bytes;
        self.permutation_bytes += other.permutation_bytes;
        self.hash_df_bytes += other.hash_df_bytes;
        self.postings_raw_bytes += other.postings_raw_bytes;
        self.postings_packed_bytes += other.postings_packed_bytes;
        self.posting_block_meta_bytes += other.posting_block_meta_bytes;
        self.borrowed_bytes += other.borrowed_bytes;
        self.shared_bytes += other.shared_bytes;
    }

    /// Moves this breakdown's component content into
    /// [`shared_bytes`](Self::shared_bytes): the accounting applied to a
    /// shard that an earlier index in a `mem_usage_shared` walk already
    /// counted in full.
    pub(crate) fn into_shared(self) -> MemUsage {
        MemUsage {
            shared_bytes: self.total_bytes(),
            ..MemUsage::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_component_except_borrowed() {
        let usage = MemUsage {
            hash_arena_bytes: 1,
            hash_offsets_bytes: 2,
            buffer_arena_bytes: 4,
            meta_bytes: 8,
            permutation_bytes: 16,
            hash_df_bytes: 32,
            postings_raw_bytes: 64,
            postings_packed_bytes: 128,
            posting_block_meta_bytes: 256,
            borrowed_bytes: 10_000,
            shared_bytes: 20_000,
        };
        // Neither informational field (borrowed, shared) joins the total.
        assert_eq!(usage.total_bytes(), 511);
        // Arena content excludes only the rebuilt hash_df map.
        assert_eq!(usage.arena_content_bytes(), 511 - 32);
    }

    #[test]
    fn into_shared_moves_the_total_and_drops_components() {
        let usage = MemUsage {
            hash_arena_bytes: 100,
            hash_df_bytes: 11,
            borrowed_bytes: 100,
            ..MemUsage::default()
        };
        let shared = usage.into_shared();
        assert_eq!(shared.shared_bytes, 111);
        assert_eq!(shared.total_bytes(), 0);
        assert_eq!(shared.borrowed_bytes, 0);
    }

    #[test]
    fn add_accumulates_field_by_field() {
        let unit = MemUsage {
            hash_arena_bytes: 1,
            hash_offsets_bytes: 1,
            buffer_arena_bytes: 1,
            meta_bytes: 1,
            permutation_bytes: 1,
            hash_df_bytes: 1,
            postings_raw_bytes: 1,
            postings_packed_bytes: 1,
            posting_block_meta_bytes: 1,
            borrowed_bytes: 1,
            shared_bytes: 1,
        };
        let mut acc = MemUsage::default();
        acc.add(&unit);
        acc.add(&unit);
        assert_eq!(acc.total_bytes(), 18);
        assert_eq!(acc.borrowed_bytes, 2);
        assert_eq!(acc.shared_bytes, 2);
    }
}
