//! The GB-KMV containment similarity search index (Algorithms 1 and 2).
//!
//! [`GbKmvIndex::build`] runs Algorithm 1: it computes the dataset statistics,
//! chooses the buffer size `r` with the cost model (unless fixed by the
//! caller), selects the global threshold `τ` from the remaining budget and
//! sketches every record. [`GbKmvIndex::search`] runs Algorithm 2: the
//! containment threshold is converted to an overlap threshold
//! `θ = t*·|Q|`, the intersection of the query with each candidate record is
//! estimated with Equation 27, and records whose estimate reaches `θ` are
//! returned.
//!
//! Candidate generation follows the paper's PPjoin*-inspired acceleration:
//! instead of scanning every record, an inverted index over (a) the buffered
//! element bits and (b) the G-KMV signature hash values yields exactly the
//! records whose estimated overlap can be non-zero; a record-size filter
//! (`|X| ≥ θ`) prunes records that could never reach the overlap threshold.
//! The unaccelerated [`GbKmvIndex::search_scan`] is kept both as a reference
//! implementation and for the ablation benchmark.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cost::{BufferCostModel, CostModelConfig};
use crate::dataset::{Dataset, ElementId, Record, RecordId};
use crate::gbkmv::{GbKmvRecordSketch, GbKmvSketcher};
use crate::hash::Hasher64;
use crate::sim::OverlapThreshold;
use crate::stats::DatasetStats;

/// A single search result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier of the matching record.
    pub record_id: RecordId,
    /// Estimated intersection size `|Q ∩ X|^`.
    pub estimated_overlap: f64,
    /// Estimated containment similarity `Ĉ(Q, X)`.
    pub estimated_containment: f64,
}

/// Common interface implemented by every (approximate or exact) containment
/// similarity search structure in this repository, so the evaluation harness
/// can treat GB-KMV, its ablations, LSH-E and the exact baselines uniformly.
pub trait ContainmentIndex {
    /// Returns the records whose (estimated) containment similarity with
    /// respect to `query` is at least `t_star`.
    fn search(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit>;

    /// Space consumed by the index, measured in elements (32-bit words), the
    /// unit the paper's space budget uses.
    fn space_elements(&self) -> f64;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// How the buffer size is chosen at build time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BufferSizing {
    /// Choose `r` with the cost model of Section IV-C6 (the default).
    #[default]
    Auto,
    /// Use a fixed buffer size (0 disables the buffer, i.e. G-KMV).
    Fixed(usize),
}

/// Configuration of a [`GbKmvIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbKmvConfig {
    /// Space budget as a fraction of the dataset size `N` (the paper's
    /// "SpaceUsed"; its default is 10%). Ignored if `budget_elements` is set.
    pub space_fraction: f64,
    /// Absolute space budget in elements; overrides `space_fraction`.
    pub budget_elements: Option<usize>,
    /// Buffer sizing strategy.
    pub buffer: BufferSizing,
    /// Seed of the sketch hash function.
    pub hash_seed: u64,
    /// Whether the inverted-signature candidate filter is used by
    /// [`GbKmvIndex::search`] (disable for the ablation).
    pub use_candidate_filter: bool,
    /// Cost model configuration used when `buffer` is [`BufferSizing::Auto`].
    pub cost_model: CostModelConfig,
}

impl Default for GbKmvConfig {
    fn default() -> Self {
        GbKmvConfig {
            space_fraction: 0.10,
            budget_elements: None,
            buffer: BufferSizing::Auto,
            hash_seed: 0x6bb7_9e4b_1f2d_3c58,
            use_candidate_filter: true,
            cost_model: CostModelConfig::default(),
        }
    }
}

impl GbKmvConfig {
    /// A configuration with the given space fraction and defaults elsewhere.
    pub fn with_space_fraction(fraction: f64) -> Self {
        GbKmvConfig {
            space_fraction: fraction,
            ..Default::default()
        }
    }

    /// A configuration with an absolute element budget.
    pub fn with_budget_elements(budget: usize) -> Self {
        GbKmvConfig {
            budget_elements: Some(budget),
            ..Default::default()
        }
    }

    /// Fixes the buffer size (0 turns GB-KMV into plain G-KMV).
    pub fn buffer_size(mut self, r: usize) -> Self {
        self.buffer = BufferSizing::Fixed(r);
        self
    }

    /// Overrides the sketch hash seed.
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Enables or disables the inverted-signature candidate filter.
    pub fn candidate_filter(mut self, enabled: bool) -> Self {
        self.use_candidate_filter = enabled;
        self
    }

    /// Resolves the element budget for a dataset with `total_elements`
    /// occurrences.
    pub fn resolve_budget(&self, total_elements: usize) -> usize {
        self.budget_elements
            .unwrap_or_else(|| (self.space_fraction * total_elements as f64).round() as usize)
            .max(1)
    }
}

/// Build-time summary of a [`GbKmvIndex`], reported by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexSummary {
    /// The element budget the index was built with.
    pub budget_elements: usize,
    /// The buffer size `r` actually used.
    pub buffer_size: usize,
    /// The global threshold `τ` on the unit interval.
    pub tau: f64,
    /// Space actually consumed, in elements.
    pub space_used_elements: f64,
    /// Space consumed as a fraction of the dataset size `N`.
    pub space_used_fraction: f64,
    /// Number of indexed records.
    pub num_records: usize,
}

/// The GB-KMV containment similarity search index.
#[derive(Debug, Clone)]
pub struct GbKmvIndex {
    sketcher: GbKmvSketcher,
    sketches: Vec<GbKmvRecordSketch>,
    record_sizes: Vec<usize>,
    /// Inverted postings from G-KMV signature hash value to record ids.
    signature_postings: HashMap<u64, Vec<u32>>,
    /// Inverted postings from buffer bit position to record ids.
    buffer_postings: Vec<Vec<u32>>,
    summary: IndexSummary,
    config: GbKmvConfig,
    total_elements: usize,
}

impl GbKmvIndex {
    /// Builds the index over a dataset (Algorithm 1).
    pub fn build(dataset: &Dataset, config: GbKmvConfig) -> Self {
        let stats = DatasetStats::compute(dataset);
        Self::build_with_stats(dataset, &stats, config)
    }

    /// Builds the index when the dataset statistics are already available
    /// (avoids a second pass when the caller needs the stats anyway).
    pub fn build_with_stats(dataset: &Dataset, stats: &DatasetStats, config: GbKmvConfig) -> Self {
        let total_elements = stats.total_elements;
        let budget = config.resolve_budget(total_elements);
        let buffer_size = match config.buffer {
            BufferSizing::Fixed(r) => r.min(stats.num_distinct_elements),
            BufferSizing::Auto => {
                BufferCostModel::evaluate(stats, budget, config.cost_model).optimal_buffer_size
            }
        };

        let hasher = Hasher64::new(config.hash_seed);
        let sketcher = GbKmvSketcher::build(dataset, stats, hasher, buffer_size, budget);
        let sketches = sketcher.sketch_dataset(dataset);
        let record_sizes: Vec<usize> = dataset.records().iter().map(Record::len).collect();

        let mut signature_postings: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut buffer_postings: Vec<Vec<u32>> = vec![Vec::new(); sketcher.layout().size()];
        if config.use_candidate_filter {
            for (id, sketch) in sketches.iter().enumerate() {
                for &h in sketch.gkmv.hashes() {
                    signature_postings.entry(h).or_default().push(id as u32);
                }
                for pos in sketch.buffer.set_positions() {
                    buffer_postings[pos as usize].push(id as u32);
                }
            }
        }

        let space_used_elements: f64 = sketches
            .iter()
            .map(|s| sketcher.sketch_cost_elements(s))
            .sum();

        let summary = IndexSummary {
            budget_elements: budget,
            buffer_size,
            tau: sketcher.threshold().unit(),
            space_used_elements,
            space_used_fraction: if total_elements == 0 {
                0.0
            } else {
                space_used_elements / total_elements as f64
            },
            num_records: dataset.len(),
        };

        GbKmvIndex {
            sketcher,
            sketches,
            record_sizes,
            signature_postings,
            buffer_postings,
            summary,
            config,
            total_elements,
        }
    }

    /// The shared sketching state (hash function, layout, threshold).
    pub fn sketcher(&self) -> &GbKmvSketcher {
        &self.sketcher
    }

    /// Build-time summary (budget, buffer size, τ, space used).
    pub fn summary(&self) -> IndexSummary {
        self.summary
    }

    /// Number of indexed records.
    pub fn num_records(&self) -> usize {
        self.sketches.len()
    }

    /// The per-record sketches (exposed for diagnostics and the benchmarks).
    pub fn sketches(&self) -> &[GbKmvRecordSketch] {
        &self.sketches
    }

    /// Sketches an ad-hoc query with the index's hash function, layout and
    /// threshold.
    pub fn sketch_query(&self, query: &Record) -> GbKmvRecordSketch {
        self.sketcher.sketch_record(query)
    }

    /// Estimated containment of `query` in the record `record_id`.
    pub fn estimate_containment(&self, query: &Record, record_id: RecordId) -> f64 {
        let q_sketch = self.sketch_query(query);
        self.sketcher
            .estimate_containment(&q_sketch, &self.sketches[record_id], query.len())
    }

    /// Containment similarity search (Algorithm 2) using the inverted
    /// signature postings for candidate generation when enabled.
    pub fn search_record(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        if self.config.use_candidate_filter {
            self.search_filtered(query, t_star)
        } else {
            self.search_scan(query, t_star)
        }
    }

    /// Reference implementation: estimates the intersection with every
    /// record (subject to the size filter) without candidate pruning.
    pub fn search_scan(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        let q = query.len();
        let threshold = OverlapThreshold::new(q, t_star);
        let q_sketch = self.sketch_query(query);
        let mut hits = Vec::new();
        for (id, sketch) in self.sketches.iter().enumerate() {
            if self.record_sizes[id] < threshold.exact {
                continue;
            }
            let pair = self.sketcher.estimate_pair(&q_sketch, sketch);
            if pair.intersection_estimate + 1e-9 >= threshold.raw {
                hits.push(SearchHit {
                    record_id: id,
                    estimated_overlap: pair.intersection_estimate,
                    estimated_containment: if q == 0 {
                        0.0
                    } else {
                        pair.intersection_estimate / q as f64
                    },
                });
            }
        }
        hits
    }

    /// Candidate-filtered search: only records sharing at least one buffered
    /// element or one G-KMV signature hash with the query are evaluated.
    fn search_filtered(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        let q = query.len();
        let threshold = OverlapThreshold::new(q, t_star);
        if threshold.raw <= 0.0 {
            // Every record trivially satisfies a zero threshold.
            return self.search_scan(query, t_star);
        }
        let q_sketch = self.sketch_query(query);

        // Gather candidates from signature postings and buffer postings.
        let mut candidates: HashMap<u32, ()> = HashMap::new();
        for &h in q_sketch.gkmv.hashes() {
            if let Some(postings) = self.signature_postings.get(&h) {
                for &rid in postings {
                    candidates.insert(rid, ());
                }
            }
        }
        for pos in q_sketch.buffer.set_positions() {
            for &rid in &self.buffer_postings[pos as usize] {
                candidates.insert(rid, ());
            }
        }

        let mut hits = Vec::new();
        for (&rid, _) in candidates.iter() {
            let id = rid as usize;
            if self.record_sizes[id] < threshold.exact {
                continue;
            }
            let pair = self.sketcher.estimate_pair(&q_sketch, &self.sketches[id]);
            if pair.intersection_estimate + 1e-9 >= threshold.raw {
                hits.push(SearchHit {
                    record_id: id,
                    estimated_overlap: pair.intersection_estimate,
                    estimated_containment: if q == 0 {
                        0.0
                    } else {
                        pair.intersection_estimate / q as f64
                    },
                });
            }
        }
        hits.sort_by_key(|h| h.record_id);
        hits
    }

    /// Top-k containment search: the `k` records with the highest estimated
    /// containment similarity with respect to the query.
    ///
    /// This is the ranking variant of Algorithm 2 used by applications such
    /// as domain search, where the analyst wants the best-covering datasets
    /// rather than everything above a threshold. Candidates are generated
    /// exactly as in the thresholded search (every record sharing a buffered
    /// element or a signature hash with the query); ties are broken by record
    /// id for determinism.
    pub fn search_topk(&self, query: &Record, k: usize) -> Vec<SearchHit> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let q = query.len();
        let q_sketch = self.sketch_query(query);

        let mut hits: Vec<SearchHit> = Vec::with_capacity(self.sketches.len().min(1024));
        if self.config.use_candidate_filter {
            let mut candidates: HashMap<u32, ()> = HashMap::new();
            for &h in q_sketch.gkmv.hashes() {
                if let Some(postings) = self.signature_postings.get(&h) {
                    for &rid in postings {
                        candidates.insert(rid, ());
                    }
                }
            }
            for pos in q_sketch.buffer.set_positions() {
                for &rid in &self.buffer_postings[pos as usize] {
                    candidates.insert(rid, ());
                }
            }
            for (&rid, _) in candidates.iter() {
                let id = rid as usize;
                let pair = self.sketcher.estimate_pair(&q_sketch, &self.sketches[id]);
                hits.push(SearchHit {
                    record_id: id,
                    estimated_overlap: pair.intersection_estimate,
                    estimated_containment: pair.intersection_estimate / q as f64,
                });
            }
        } else {
            for (id, sketch) in self.sketches.iter().enumerate() {
                let pair = self.sketcher.estimate_pair(&q_sketch, sketch);
                hits.push(SearchHit {
                    record_id: id,
                    estimated_overlap: pair.intersection_estimate,
                    estimated_containment: pair.intersection_estimate / q as f64,
                });
            }
        }
        hits.sort_by(|a, b| {
            b.estimated_containment
                .total_cmp(&a.estimated_containment)
                .then_with(|| a.record_id.cmp(&b.record_id))
        });
        hits.truncate(k);
        hits
    }

    /// Appends a new record to the index, reusing the existing layout and
    /// global threshold (the dynamic-data maintenance path described in the
    /// paper; a full rebuild re-optimises `τ` and `r`).
    pub fn insert(&mut self, record: &Record) -> RecordId {
        let id = self.sketches.len();
        let sketch = self.sketcher.sketch_record(record);
        if self.config.use_candidate_filter {
            for &h in sketch.gkmv.hashes() {
                self.signature_postings
                    .entry(h)
                    .or_default()
                    .push(id as u32);
            }
            for pos in sketch.buffer.set_positions() {
                self.buffer_postings[pos as usize].push(id as u32);
            }
        }
        self.summary.space_used_elements += self.sketcher.sketch_cost_elements(&sketch);
        self.total_elements += record.len();
        self.summary.space_used_fraction =
            self.summary.space_used_elements / self.total_elements.max(1) as f64;
        self.summary.num_records += 1;
        self.record_sizes.push(record.len());
        self.sketches.push(sketch);
        id
    }
}

impl ContainmentIndex for GbKmvIndex {
    fn search(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit> {
        self.search_record(&Record::new(query.to_vec()), t_star)
    }

    fn space_elements(&self) -> f64 {
        self.summary.space_used_elements
    }

    fn name(&self) -> &'static str {
        "GB-KMV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::sim::containment;

    fn paper_dataset() -> Dataset {
        Dataset::from_records(vec![
            vec![1, 2, 3, 4, 7],
            vec![2, 3, 5],
            vec![2, 4, 5],
            vec![1, 2, 6, 10],
        ])
    }

    /// Synthetic skewed dataset large enough for approximate behaviour.
    fn skewed_dataset(records: usize) -> Dataset {
        let recs: Vec<Vec<u32>> = (0..records)
            .map(|i| {
                let mut v: Vec<u32> = (0..8).collect();
                let start = (i as u32 * 37) % 4000;
                v.extend((0..80u32).map(|j| 8 + (start + j * 5) % 4000));
                v
            })
            .collect();
        Dataset::from_records(recs)
    }

    #[test]
    fn full_budget_reproduces_exact_answers_on_paper_example() {
        let dataset = paper_dataset();
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
        let query = vec![1u32, 2, 3, 5, 7, 9];
        let hits = index.search(&query, 0.5);
        let ids: Vec<usize> = hits.iter().map(|h| h.record_id).collect();
        // Example 1: X1 (0.67) and X2 (0.5) qualify at t* = 0.5.
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
        assert!(!ids.contains(&3));
    }

    #[test]
    fn summary_reports_space_within_budget() {
        let dataset = skewed_dataset(150);
        let config = GbKmvConfig::with_space_fraction(0.10);
        let index = GbKmvIndex::build(&dataset, config);
        let summary = index.summary();
        assert!(summary.space_used_elements > 0.0);
        // The G-KMV threshold is chosen so the hash-value part respects the
        // budget; the bitmap part is included in the budget split, so total
        // space stays within a small tolerance of the budget.
        assert!(
            summary.space_used_elements <= summary.budget_elements as f64 * 1.05 + 8.0,
            "space {} exceeds budget {}",
            summary.space_used_elements,
            summary.budget_elements
        );
        assert_eq!(summary.num_records, 150);
        assert!(summary.tau > 0.0 && summary.tau <= 1.0);
    }

    #[test]
    fn filtered_and_scan_search_agree() {
        let dataset = skewed_dataset(120);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        for qid in [0usize, 17, 63, 99] {
            let query = dataset.record(qid).clone();
            let mut scan: Vec<usize> = index
                .search_scan(&query, 0.4)
                .iter()
                .map(|h| h.record_id)
                .collect();
            let mut filt: Vec<usize> = index
                .search_record(&query, 0.4)
                .iter()
                .map(|h| h.record_id)
                .collect();
            scan.sort_unstable();
            filt.sort_unstable();
            assert_eq!(
                scan, filt,
                "query {qid}: filtered search diverged from scan"
            );
        }
    }

    #[test]
    fn self_query_is_always_found() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        for qid in (0..100).step_by(13) {
            let hits = index.search_record(dataset.record(qid), 0.5);
            assert!(
                hits.iter().any(|h| h.record_id == qid),
                "record {qid} should match itself at t*=0.5 (true containment is 1.0)"
            );
        }
    }

    #[test]
    fn zero_threshold_returns_everything() {
        let dataset = skewed_dataset(40);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.2));
        let hits = index.search_record(dataset.record(0), 0.0);
        assert_eq!(hits.len(), 40);
    }

    #[test]
    fn estimates_track_exact_containment() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let mut total_err = 0.0;
        let mut count = 0;
        for qid in (0..100).step_by(9) {
            let query = dataset.record(qid);
            for rid in (0..100).step_by(11) {
                let est = index.estimate_containment(query, rid);
                let exact = containment(query, dataset.record(rid));
                total_err += (est - exact).abs();
                count += 1;
            }
        }
        let mae = total_err / count as f64;
        assert!(mae < 0.12, "mean absolute error {mae} too large");
    }

    #[test]
    fn fixed_buffer_config_is_respected() {
        let dataset = skewed_dataset(80);
        let index = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.2).buffer_size(16),
        );
        assert_eq!(index.summary().buffer_size, 16);
        assert_eq!(index.sketcher().layout().size(), 16);
        let gkmv_only = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.2).buffer_size(0),
        );
        assert_eq!(gkmv_only.summary().buffer_size, 0);
    }

    #[test]
    fn insert_extends_index_and_is_searchable() {
        let dataset = skewed_dataset(60);
        let mut index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let new_record = Record::new((0..50u32).map(|i| i * 3).collect());
        let id = index.insert(&new_record);
        assert_eq!(id, 60);
        assert_eq!(index.num_records(), 61);
        let hits = index.search_record(&new_record, 0.8);
        assert!(hits.iter().any(|h| h.record_id == id));
    }

    #[test]
    fn topk_returns_best_records_in_order() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let query = dataset.record(10);
        let top = index.search_topk(query, 5);
        assert_eq!(top.len(), 5);
        // The query's own record has true containment 1.0 and must rank first.
        assert_eq!(top[0].record_id, 10);
        // Scores are non-increasing.
        assert!(top
            .windows(2)
            .all(|w| w[0].estimated_containment >= w[1].estimated_containment));
        // k larger than the candidate set is clamped, k = 0 is empty.
        assert!(index.search_topk(query, 10_000).len() <= 100);
        assert!(index.search_topk(query, 0).is_empty());
    }

    #[test]
    fn topk_matches_between_filtered_and_scan_modes() {
        let dataset = skewed_dataset(80);
        let filtered = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.4));
        let scan = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.4).candidate_filter(false),
        );
        let query = dataset.record(7);
        let a: Vec<usize> = filtered
            .search_topk(query, 10)
            .iter()
            .map(|h| h.record_id)
            .collect();
        let b: Vec<usize> = scan
            .search_topk(query, 10)
            .iter()
            .map(|h| h.record_id)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn trait_object_usage() {
        let dataset = paper_dataset();
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(1.0));
        let boxed: Box<dyn ContainmentIndex> = Box::new(index);
        assert_eq!(boxed.name(), "GB-KMV");
        assert!(boxed.space_elements() > 0.0);
        assert!(!boxed.search(&[1, 2, 3, 5, 7, 9], 0.5).is_empty());
    }

    #[test]
    fn config_budget_resolution() {
        let c = GbKmvConfig::with_space_fraction(0.05);
        assert_eq!(c.resolve_budget(1000), 50);
        let c2 = GbKmvConfig::with_budget_elements(123);
        assert_eq!(c2.resolve_budget(1000), 123);
        // Budgets never resolve to zero.
        let c3 = GbKmvConfig::with_space_fraction(0.0);
        assert_eq!(c3.resolve_budget(1000), 1);
    }
}
