//! The GB-KMV containment similarity search index (Algorithms 1 and 2).
//!
//! [`GbKmvIndex::build`] runs Algorithm 1: it computes the dataset statistics,
//! chooses the buffer size `r` with the cost model (unless fixed by the
//! caller), selects the global threshold `τ` from the remaining budget and
//! sketches every record — fanning the sketching and posting construction out
//! over `threads` scoped threads. [`GbKmvIndex::search`] runs Algorithm 2:
//! the containment threshold is converted to an overlap threshold
//! `θ = t*·|Q|`, the intersection of the query with each candidate record is
//! estimated with Equation 27, and records whose estimate reaches `θ` are
//! returned.
//!
//! # Query engine
//!
//! The accelerated query path is a **term-at-a-time score accumulator** over
//! the flattened [`SketchStore`]:
//!
//! 1. Walking the inverted postings of the query's G-KMV signature hashes
//!    accumulates `K∩` per candidate into the epoch-stamped dense arrays of
//!    a reusable [`QueryScratch`], and walking the buffer-bit postings
//!    registers the remaining candidates — a single pass over exactly the
//!    postings the index already stores.
//! 2. Each touched candidate is then finished in O(1) arithmetic
//!    ([`GKmvPairEstimate::from_parts`]) from the store's precomputed
//!    `gkmv_len`/`max_hash`/`saturated` scalars plus a 1–2 word popcount for
//!    the buffer overlap — no sorted merge, no per-candidate allocation.
//!
//! The unaccelerated [`GbKmvIndex::search_scan`] (full scan, sorted merges)
//! and [`GbKmvIndex::search_filtered_baseline`] (hash-map candidate set +
//! per-candidate merges, the pre-accumulator design) are kept as reference
//! implementations: all three return bit-identical hits, which the agreement
//! tests and the `query_agreement` property suite enforce.

use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use crate::cost::{BufferCostModel, CostModelConfig};
use crate::dataset::{Dataset, ElementId, Record, RecordId};
use crate::gbkmv::{GbKmvRecordSketch, GbKmvSketcher};
use crate::gkmv::GKmvPairEstimate;
use crate::hash::Hasher64;
use crate::parallel;
use crate::sim::OverlapThreshold;
use crate::stats::DatasetStats;
use crate::store::{QueryScratch, SketchStore};

/// A single search result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier of the matching record.
    pub record_id: RecordId,
    /// Estimated intersection size `|Q ∩ X|^`.
    pub estimated_overlap: f64,
    /// Estimated containment similarity `Ĉ(Q, X)`.
    pub estimated_containment: f64,
}

/// Common interface implemented by every (approximate or exact) containment
/// similarity search structure in this repository, so the evaluation harness
/// can treat GB-KMV, its ablations, LSH-E and the exact baselines uniformly.
pub trait ContainmentIndex {
    /// Returns the records whose (estimated) containment similarity with
    /// respect to `query` is at least `t_star`.
    ///
    /// **Contract:** hits are returned sorted by ascending `record_id`, so
    /// result sets from different methods (and from the same method's
    /// accelerated and reference paths) compare positionally.
    fn search(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit>;

    /// Space consumed by the index, measured in elements (32-bit words), the
    /// unit the paper's space budget uses.
    fn space_elements(&self) -> f64;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// How the buffer size is chosen at build time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BufferSizing {
    /// Choose `r` with the cost model of Section IV-C6 (the default).
    #[default]
    Auto,
    /// Use a fixed buffer size (0 disables the buffer, i.e. G-KMV).
    Fixed(usize),
}

/// Configuration of a [`GbKmvIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbKmvConfig {
    /// Space budget as a fraction of the dataset size `N` (the paper's
    /// "SpaceUsed"; its default is 10%). Ignored if `budget_elements` is set.
    pub space_fraction: f64,
    /// Absolute space budget in elements; overrides `space_fraction`.
    pub budget_elements: Option<usize>,
    /// Buffer sizing strategy.
    pub buffer: BufferSizing,
    /// Seed of the sketch hash function.
    pub hash_seed: u64,
    /// Whether the inverted-signature candidate filter is used by
    /// [`GbKmvIndex::search`] (disable for the ablation).
    pub use_candidate_filter: bool,
    /// Number of threads used for sketching and posting construction at build
    /// time (`0` = all available cores). The built index is identical for
    /// every thread count.
    pub threads: usize,
    /// Cost model configuration used when `buffer` is [`BufferSizing::Auto`].
    pub cost_model: CostModelConfig,
}

impl Default for GbKmvConfig {
    fn default() -> Self {
        GbKmvConfig {
            space_fraction: 0.10,
            budget_elements: None,
            buffer: BufferSizing::Auto,
            hash_seed: 0x6bb7_9e4b_1f2d_3c58,
            use_candidate_filter: true,
            threads: 0,
            cost_model: CostModelConfig::default(),
        }
    }
}

impl GbKmvConfig {
    /// A configuration with the given space fraction and defaults elsewhere.
    pub fn with_space_fraction(fraction: f64) -> Self {
        GbKmvConfig {
            space_fraction: fraction,
            ..Default::default()
        }
    }

    /// A configuration with an absolute element budget.
    pub fn with_budget_elements(budget: usize) -> Self {
        GbKmvConfig {
            budget_elements: Some(budget),
            ..Default::default()
        }
    }

    /// Fixes the buffer size (0 turns GB-KMV into plain G-KMV).
    pub fn buffer_size(mut self, r: usize) -> Self {
        self.buffer = BufferSizing::Fixed(r);
        self
    }

    /// Overrides the sketch hash seed.
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Enables or disables the inverted-signature candidate filter.
    pub fn candidate_filter(mut self, enabled: bool) -> Self {
        self.use_candidate_filter = enabled;
        self
    }

    /// Sets the build-time thread count (`0` = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the element budget for a dataset with `total_elements`
    /// occurrences.
    pub fn resolve_budget(&self, total_elements: usize) -> usize {
        self.budget_elements
            .unwrap_or_else(|| (self.space_fraction * total_elements as f64).round() as usize)
            .max(1)
    }
}

/// Build-time summary of a [`GbKmvIndex`], reported by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexSummary {
    /// The element budget the index was built with.
    pub budget_elements: usize,
    /// The buffer size `r` actually used.
    pub buffer_size: usize,
    /// The global threshold `τ` on the unit interval.
    pub tau: f64,
    /// Space actually consumed, in elements.
    pub space_used_elements: f64,
    /// Space consumed as a fraction of the dataset size `N`.
    pub space_used_fraction: f64,
    /// Number of indexed records.
    pub num_records: usize,
}

thread_local! {
    /// Per-thread scratch reused by the convenience search entry points, so
    /// callers that don't thread a [`QueryScratch`] through still pay zero
    /// allocation per query after the first.
    ///
    /// The scratch grows to the largest index searched on the thread
    /// (8 bytes per record) and stays resident for the thread's lifetime —
    /// even after the index is dropped. Query loops that care about retained
    /// memory should pass their own scratch via
    /// [`GbKmvIndex::search_filtered_with`] / [`GbKmvIndex::search_topk_with`]
    /// and drop it when done.
    static QUERY_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// The GB-KMV containment similarity search index.
#[derive(Debug, Clone)]
pub struct GbKmvIndex {
    sketcher: GbKmvSketcher,
    store: SketchStore,
    /// Inverted postings from G-KMV signature hash value to record ids
    /// (ascending within each list).
    signature_postings: HashMap<u64, Vec<u32>>,
    /// Inverted postings from buffer bit position to record ids (ascending).
    buffer_postings: Vec<Vec<u32>>,
    summary: IndexSummary,
    config: GbKmvConfig,
    total_elements: usize,
}

impl GbKmvIndex {
    /// Builds the index over a dataset (Algorithm 1).
    pub fn build(dataset: &Dataset, config: GbKmvConfig) -> Self {
        let stats = DatasetStats::compute(dataset);
        Self::build_with_stats(dataset, &stats, config)
    }

    /// Builds the index when the dataset statistics are already available
    /// (avoids a second pass when the caller needs the stats anyway).
    pub fn build_with_stats(dataset: &Dataset, stats: &DatasetStats, config: GbKmvConfig) -> Self {
        let total_elements = stats.total_elements;
        let budget = config.resolve_budget(total_elements);
        let buffer_size = match config.buffer {
            BufferSizing::Fixed(r) => r.min(stats.num_distinct_elements),
            BufferSizing::Auto => {
                BufferCostModel::evaluate(stats, budget, config.cost_model).optimal_buffer_size
            }
        };

        let hasher = Hasher64::new(config.hash_seed);
        let sketcher = GbKmvSketcher::build(dataset, stats, hasher, buffer_size, budget);
        let sketches = sketcher.sketch_dataset_threads(dataset, config.threads);
        let store = SketchStore::from_sketches(sketcher.layout().words(), &sketches);

        let mut signature_postings: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut buffer_postings: Vec<Vec<u32>> = vec![Vec::new(); sketcher.layout().size()];
        if config.use_candidate_filter {
            // Each worker builds postings for a contiguous record chunk;
            // merging the chunks in order keeps every posting list sorted by
            // ascending record id, identical to the sequential build.
            let chunked = parallel::map_chunks(&sketches, config.threads, |offset, chunk| {
                let mut sig: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut buf: Vec<Vec<u32>> = vec![Vec::new(); buffer_postings.len()];
                for (i, sketch) in chunk.iter().enumerate() {
                    let id = (offset + i) as u32;
                    for &h in sketch.gkmv.hashes() {
                        sig.entry(h).or_default().push(id);
                    }
                    for pos in sketch.buffer.set_positions() {
                        buf[pos as usize].push(id);
                    }
                }
                (sig, buf)
            });
            for (sig, buf) in chunked {
                for (h, ids) in sig {
                    signature_postings.entry(h).or_default().extend(ids);
                }
                for (pos, ids) in buf.into_iter().enumerate() {
                    buffer_postings[pos].extend(ids);
                }
            }
        }

        let space_used_elements =
            sketcher.layout().cost_per_record() * store.len() as f64 + store.total_hashes() as f64;

        let summary = IndexSummary {
            budget_elements: budget,
            buffer_size,
            tau: sketcher.threshold().unit(),
            space_used_elements,
            space_used_fraction: if total_elements == 0 {
                0.0
            } else {
                space_used_elements / total_elements as f64
            },
            num_records: dataset.len(),
        };

        GbKmvIndex {
            sketcher,
            store,
            signature_postings,
            buffer_postings,
            summary,
            config,
            total_elements,
        }
    }

    /// The shared sketching state (hash function, layout, threshold).
    pub fn sketcher(&self) -> &GbKmvSketcher {
        &self.sketcher
    }

    /// Build-time summary (budget, buffer size, τ, space used).
    pub fn summary(&self) -> IndexSummary {
        self.summary
    }

    /// Number of indexed records.
    pub fn num_records(&self) -> usize {
        self.store.len()
    }

    /// The flattened sketch store (exposed for diagnostics and benchmarks).
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// Materialises the sketch of one record (diagnostics; the query paths
    /// operate on [`GbKmvIndex::store`] directly).
    pub fn record_sketch(&self, record_id: RecordId) -> GbKmvRecordSketch {
        self.store.record_sketch(record_id)
    }

    /// Sketches an ad-hoc query with the index's hash function, layout and
    /// threshold.
    pub fn sketch_query(&self, query: &Record) -> GbKmvRecordSketch {
        self.sketcher.sketch_record(query)
    }

    /// Estimated containment of `query` in the record `record_id`.
    pub fn estimate_containment(&self, query: &Record, record_id: RecordId) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        let q_sketch = self.sketch_query(query);
        let view = QuerySketchView::new(&q_sketch);
        let gkmv =
            self.store
                .gkmv_pair_estimate(view.hashes, view.max_hash, view.saturated, record_id);
        let overlap = self
            .store
            .buffer_intersection_count(view.buffer_words(), record_id);
        (overlap as f64 + gkmv.intersection_estimate) / query.len() as f64
    }

    /// Containment similarity search (Algorithm 2) using the accumulator
    /// engine when the candidate filter is enabled.
    pub fn search_record(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        self.search_sorted(query.elements(), t_star)
    }

    /// Containment similarity search over a borrowed element slice.
    ///
    /// If the slice is already sorted and deduplicated (every [`Record`]'s
    /// invariant, so e.g. `record.elements()` qualifies) the query runs with
    /// **zero** copies of the input; otherwise one canonicalising copy is
    /// made.
    pub fn search_elements(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit> {
        if query.windows(2).all(|w| w[0] < w[1]) {
            self.search_sorted(query, t_star)
        } else {
            let owned = Record::new(query.to_vec());
            self.search_sorted(owned.elements(), t_star)
        }
    }

    fn search_sorted(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit> {
        if self.config.use_candidate_filter {
            QUERY_SCRATCH
                .with(|scratch| self.filtered_sorted(query, t_star, &mut scratch.borrow_mut()))
        } else {
            self.scan_sorted(query, t_star)
        }
    }

    /// Reference implementation: estimates the intersection with every
    /// record (subject to the size filter) without candidate pruning, via a
    /// sorted merge per record over the flat store.
    pub fn search_scan(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        self.scan_sorted(query.elements(), t_star)
    }

    fn scan_sorted(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit> {
        let q = query.len();
        let threshold = OverlapThreshold::new(q, t_star);
        let q_sketch = self.sketcher.sketch_elements(query);
        let view = QuerySketchView::new(&q_sketch);
        let mut hits = Vec::new();
        for id in 0..self.store.len() {
            if self.store.record_size(id) < threshold.exact {
                continue;
            }
            if let Some(hit) = self.finish_merge(&view, id, q, threshold.raw) {
                hits.push(hit);
            }
        }
        hits
    }

    /// Candidate-filtered search, accumulator engine: walks the query's
    /// signature and buffer postings once, accumulating `K∩` and candidate
    /// membership into the (thread-local) scratch, then finishes each
    /// candidate in O(1).
    ///
    /// When the index was built with the candidate filter disabled (the
    /// ablation configuration) no postings exist, so this falls back to
    /// [`GbKmvIndex::search_scan`] rather than answering from an empty
    /// candidate set.
    pub fn search_filtered(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        QUERY_SCRATCH.with(|scratch| {
            self.filtered_sorted(query.elements(), t_star, &mut scratch.borrow_mut())
        })
    }

    /// [`GbKmvIndex::search_filtered`] with an explicit reusable scratch —
    /// the zero-per-query-allocation entry point for query-loop callers.
    pub fn search_filtered_with(
        &self,
        query: &Record,
        t_star: f64,
        scratch: &mut QueryScratch,
    ) -> Vec<SearchHit> {
        self.filtered_sorted(query.elements(), t_star, scratch)
    }

    fn filtered_sorted(
        &self,
        query: &[ElementId],
        t_star: f64,
        scratch: &mut QueryScratch,
    ) -> Vec<SearchHit> {
        let q = query.len();
        let threshold = OverlapThreshold::new(q, t_star);
        if threshold.raw <= 1e-9 || !self.config.use_candidate_filter {
            // At (effectively) zero threshold every record qualifies, even
            // ones sharing no posting with the query; and without the
            // candidate filter no postings were built at all. Both cases
            // need the scan.
            return self.scan_sorted(query, t_star);
        }
        let q_sketch = self.sketcher.sketch_elements(query);
        let view = QuerySketchView::new(&q_sketch);

        self.accumulate(&view, scratch);

        // Hits are sorted after the finish: the qualifying hits are a small
        // subset of the touched candidates, so sorting them is cheaper than
        // pre-sorting the whole candidate list.
        let mut hits = Vec::with_capacity(scratch.candidates().len());
        for &rid in scratch.candidates() {
            let id = rid as usize;
            if self.store.record_size(id) < threshold.exact {
                continue;
            }
            if let Some(hit) = self.finish_accumulated(&view, scratch, rid, q, threshold.raw) {
                hits.push(hit);
            }
        }
        hits.sort_unstable_by_key(|h| h.record_id);
        hits
    }

    /// The pre-accumulator candidate-filtered search, kept as a reference
    /// implementation and for the throughput ablation benchmark: candidates
    /// are deduplicated through a fresh hash set and every candidate pays an
    /// O(|L_Q| + |L_X|) sorted merge. Falls back to the scan under the same
    /// conditions as [`GbKmvIndex::search_filtered`].
    pub fn search_filtered_baseline(&self, query: &Record, t_star: f64) -> Vec<SearchHit> {
        let q = query.len();
        let threshold = OverlapThreshold::new(q, t_star);
        if threshold.raw <= 1e-9 || !self.config.use_candidate_filter {
            return self.search_scan(query, t_star);
        }
        let q_sketch = self.sketch_query(query);
        let view = QuerySketchView::new(&q_sketch);

        let mut candidates: HashMap<u32, ()> = HashMap::new();
        for &h in view.hashes {
            if let Some(postings) = self.signature_postings.get(&h) {
                for &rid in postings {
                    candidates.insert(rid, ());
                }
            }
        }
        for pos in q_sketch.buffer.set_positions() {
            for &rid in &self.buffer_postings[pos as usize] {
                candidates.insert(rid, ());
            }
        }

        let mut hits = Vec::new();
        for (&rid, _) in candidates.iter() {
            let id = rid as usize;
            if self.store.record_size(id) < threshold.exact {
                continue;
            }
            if let Some(hit) = self.finish_merge(&view, id, q, threshold.raw) {
                hits.push(hit);
            }
        }
        hits.sort_unstable_by_key(|h| h.record_id);
        hits
    }

    /// Top-k containment search: the `k` records with the highest estimated
    /// containment similarity with respect to the query.
    ///
    /// This is the ranking variant of Algorithm 2 used by applications such
    /// as domain search, where the analyst wants the best-covering datasets
    /// rather than everything above a threshold. Candidates are generated
    /// exactly as in the thresholded search (every record sharing a buffered
    /// element or a signature hash with the query) and ranked through a
    /// bounded binary heap; ties are broken by ascending record id for
    /// determinism.
    pub fn search_topk(&self, query: &Record, k: usize) -> Vec<SearchHit> {
        QUERY_SCRATCH
            .with(|scratch| self.topk_sorted(query.elements(), k, &mut scratch.borrow_mut()))
    }

    /// [`GbKmvIndex::search_topk`] with an explicit reusable scratch.
    pub fn search_topk_with(
        &self,
        query: &Record,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Vec<SearchHit> {
        self.topk_sorted(query.elements(), k, scratch)
    }

    fn topk_sorted(
        &self,
        query: &[ElementId],
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Vec<SearchHit> {
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let q = query.len();
        let q_sketch = self.sketcher.sketch_elements(query);
        let view = QuerySketchView::new(&q_sketch);

        // Bounded min-heap: the root is the currently worst kept hit, so a
        // new candidate only displaces it when it ranks strictly better
        // (higher score, then lower record id). This replaces the previous
        // sort-everything-truncate with O(n log k).
        let mut heap: BinaryHeap<TopKEntry> = BinaryHeap::with_capacity(k + 1);
        let mut consider = |entry: TopKEntry| {
            if heap.len() < k {
                heap.push(entry);
            } else if entry < *heap.peek().expect("heap is non-empty when full") {
                heap.pop();
                heap.push(entry);
            }
        };

        if self.config.use_candidate_filter {
            self.accumulate(&view, scratch);
            for &rid in scratch.candidates() {
                let overlap = self.accumulated_overlap(&view, scratch, rid);
                consider(TopKEntry::new(rid, overlap, q));
            }
        } else {
            for id in 0..self.store.len() {
                let gkmv =
                    self.store
                        .gkmv_pair_estimate(view.hashes, view.max_hash, view.saturated, id);
                let overlap = self
                    .store
                    .buffer_intersection_count(view.buffer_words(), id)
                    as f64
                    + gkmv.intersection_estimate;
                consider(TopKEntry::new(id as u32, overlap, q));
            }
        }

        heap.into_sorted_vec()
            .into_iter()
            .map(|e| SearchHit {
                record_id: e.rid as usize,
                estimated_overlap: e.overlap,
                estimated_containment: e.score,
            })
            .collect()
    }

    /// Walks the query's signature and buffer postings, accumulating into
    /// `scratch` (begins a fresh epoch).
    fn accumulate(&self, view: &QuerySketchView<'_>, scratch: &mut QueryScratch) {
        scratch.begin(self.store.len());
        for &h in view.hashes {
            if let Some(postings) = self.signature_postings.get(&h) {
                for &rid in postings {
                    scratch.add_signature_hit(rid);
                }
            }
        }
        // The buffer walk only contributes candidate *membership*: the
        // overlap itself is recomputed at finish time as a popcount over the
        // store's fixed-stride words, which is cheaper than one counter
        // increment per posting entry.
        for pos in view.buffer.set_positions() {
            for &rid in &self.buffer_postings[pos as usize] {
                scratch.add_candidate(rid);
            }
        }
    }

    /// O(1) finish of an accumulated candidate: Equation 27 from the scratch
    /// counters and the store's scalar arrays.
    #[inline]
    fn accumulated_overlap(
        &self,
        view: &QuerySketchView<'_>,
        scratch: &QueryScratch,
        rid: u32,
    ) -> f64 {
        let id = rid as usize;
        let gkmv = GKmvPairEstimate::from_parts(
            view.hashes.len(),
            self.store.gkmv_len(id),
            scratch.k_intersection(rid),
            view.max_hash.max(self.store.max_hash(id)),
            view.saturated && self.store.is_saturated(id),
        );
        self.store
            .buffer_intersection_count(view.buffer_words(), id) as f64
            + gkmv.intersection_estimate
    }

    #[inline]
    fn finish_accumulated(
        &self,
        view: &QuerySketchView<'_>,
        scratch: &QueryScratch,
        rid: u32,
        q: usize,
        threshold_raw: f64,
    ) -> Option<SearchHit> {
        let overlap = self.accumulated_overlap(view, scratch, rid);
        Self::hit_if_qualifies(rid as usize, overlap, q, threshold_raw)
    }

    /// Sorted-merge finish (the scan and baseline reference paths).
    #[inline]
    fn finish_merge(
        &self,
        view: &QuerySketchView<'_>,
        id: usize,
        q: usize,
        threshold_raw: f64,
    ) -> Option<SearchHit> {
        let gkmv = self
            .store
            .gkmv_pair_estimate(view.hashes, view.max_hash, view.saturated, id);
        let overlap = self
            .store
            .buffer_intersection_count(view.buffer_words(), id) as f64
            + gkmv.intersection_estimate;
        Self::hit_if_qualifies(id, overlap, q, threshold_raw)
    }

    #[inline]
    fn hit_if_qualifies(
        id: usize,
        overlap: f64,
        q: usize,
        threshold_raw: f64,
    ) -> Option<SearchHit> {
        if overlap + 1e-9 >= threshold_raw {
            Some(SearchHit {
                record_id: id,
                estimated_overlap: overlap,
                estimated_containment: if q == 0 { 0.0 } else { overlap / q as f64 },
            })
        } else {
            None
        }
    }

    /// Appends a new record to the index, reusing the existing layout and
    /// global threshold (the dynamic-data maintenance path described in the
    /// paper; a full rebuild re-optimises `τ` and `r`).
    pub fn insert(&mut self, record: &Record) -> RecordId {
        let sketch = self.sketcher.sketch_record(record);
        let id = self.store.push(&sketch);
        if self.config.use_candidate_filter {
            for &h in sketch.gkmv.hashes() {
                self.signature_postings
                    .entry(h)
                    .or_default()
                    .push(id as u32);
            }
            for pos in sketch.buffer.set_positions() {
                self.buffer_postings[pos as usize].push(id as u32);
            }
        }
        self.summary.space_used_elements += self.sketcher.sketch_cost_elements(&sketch);
        self.total_elements += record.len();
        self.summary.space_used_fraction =
            self.summary.space_used_elements / self.total_elements.max(1) as f64;
        self.summary.num_records += 1;
        id
    }
}

/// Borrowed scalar view of a query sketch, so the inner loops never touch the
/// `GbKmvRecordSketch` struct.
struct QuerySketchView<'a> {
    hashes: &'a [u64],
    max_hash: u64,
    saturated: bool,
    buffer: &'a crate::buffer::ElementBuffer,
}

impl<'a> QuerySketchView<'a> {
    fn new(sketch: &'a GbKmvRecordSketch) -> Self {
        let hashes = sketch.gkmv.hashes();
        QuerySketchView {
            hashes,
            max_hash: hashes.last().copied().unwrap_or(0),
            saturated: sketch.gkmv.is_saturated(),
            buffer: &sketch.buffer,
        }
    }

    #[inline]
    fn buffer_words(&self) -> &'a [u64] {
        self.buffer.words()
    }
}

/// Heap entry of the bounded top-k search. The `Ord` instance ranks *worse*
/// hits greater (lower score first, then higher record id), so the max-heap
/// root is the weakest kept hit and `into_sorted_vec` yields best-first.
#[derive(Debug, Clone, Copy)]
struct TopKEntry {
    score: f64,
    overlap: f64,
    rid: u32,
}

impl TopKEntry {
    fn new(rid: u32, overlap: f64, query_size: usize) -> Self {
        TopKEntry {
            score: overlap / query_size as f64,
            overlap,
            rid,
        }
    }
}

impl PartialEq for TopKEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for TopKEntry {}

impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TopKEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.rid.cmp(&other.rid))
    }
}

impl ContainmentIndex for GbKmvIndex {
    fn search(&self, query: &[ElementId], t_star: f64) -> Vec<SearchHit> {
        self.search_elements(query, t_star)
    }

    fn space_elements(&self) -> f64 {
        self.summary.space_used_elements
    }

    fn name(&self) -> &'static str {
        "GB-KMV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::sim::containment;

    fn paper_dataset() -> Dataset {
        Dataset::from_records(vec![
            vec![1, 2, 3, 4, 7],
            vec![2, 3, 5],
            vec![2, 4, 5],
            vec![1, 2, 6, 10],
        ])
    }

    /// Synthetic skewed dataset large enough for approximate behaviour.
    fn skewed_dataset(records: usize) -> Dataset {
        let recs: Vec<Vec<u32>> = (0..records)
            .map(|i| {
                let mut v: Vec<u32> = (0..8).collect();
                let start = (i as u32 * 37) % 4000;
                v.extend((0..80u32).map(|j| 8 + (start + j * 5) % 4000));
                v
            })
            .collect();
        Dataset::from_records(recs)
    }

    #[test]
    fn full_budget_reproduces_exact_answers_on_paper_example() {
        let dataset = paper_dataset();
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
        let query = vec![1u32, 2, 3, 5, 7, 9];
        let hits = index.search(&query, 0.5);
        let ids: Vec<usize> = hits.iter().map(|h| h.record_id).collect();
        // Example 1: X1 (0.67) and X2 (0.5) qualify at t* = 0.5.
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
        assert!(!ids.contains(&3));
    }

    #[test]
    fn summary_reports_space_within_budget() {
        let dataset = skewed_dataset(150);
        let config = GbKmvConfig::with_space_fraction(0.10);
        let index = GbKmvIndex::build(&dataset, config);
        let summary = index.summary();
        assert!(summary.space_used_elements > 0.0);
        // The G-KMV threshold is chosen so the hash-value part respects the
        // budget; the bitmap part is included in the budget split, so total
        // space stays within a small tolerance of the budget.
        assert!(
            summary.space_used_elements <= summary.budget_elements as f64 * 1.05 + 8.0,
            "space {} exceeds budget {}",
            summary.space_used_elements,
            summary.budget_elements
        );
        assert_eq!(summary.num_records, 150);
        assert!(summary.tau > 0.0 && summary.tau <= 1.0);
    }

    #[test]
    fn filtered_scan_and_baseline_agree_bitwise() {
        let dataset = skewed_dataset(120);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        for qid in [0usize, 17, 63, 99] {
            let query = dataset.record(qid).clone();
            for t_star in [0.0, 0.2, 0.4, 0.8] {
                let scan = index.search_scan(&query, t_star);
                let filt = index.search_filtered(&query, t_star);
                let base = index.search_filtered_baseline(&query, t_star);
                assert_eq!(
                    scan, filt,
                    "query {qid} at t*={t_star}: accumulator diverged from scan"
                );
                assert_eq!(
                    scan, base,
                    "query {qid} at t*={t_star}: baseline diverged from scan"
                );
            }
        }
    }

    #[test]
    fn filtered_paths_fall_back_to_scan_without_candidate_filter() {
        // With the candidate filter disabled no postings are built; the
        // public filtered entry points must answer via the scan instead of
        // an empty candidate set.
        let dataset = skewed_dataset(60);
        let index = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.25).candidate_filter(false),
        );
        let query = dataset.record(9);
        let scan = index.search_scan(query, 0.5);
        assert!(!scan.is_empty());
        assert_eq!(index.search_filtered(query, 0.5), scan);
        assert_eq!(index.search_filtered_baseline(query, 0.5), scan);
        let mut scratch = QueryScratch::new();
        assert_eq!(index.search_filtered_with(query, 0.5, &mut scratch), scan);
    }

    #[test]
    fn results_are_sorted_by_record_id() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        for qid in [3usize, 42, 77] {
            let query = dataset.record(qid);
            for hits in [
                index.search_scan(query, 0.3),
                index.search_filtered(query, 0.3),
                index.search_filtered_baseline(query, 0.3),
            ] {
                assert!(
                    hits.windows(2).all(|w| w[0].record_id < w[1].record_id),
                    "hits not sorted by ascending record id"
                );
            }
        }
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let dataset = skewed_dataset(90);
        let seq = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.2).threads(1));
        let par = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.2).threads(4));
        assert_eq!(seq.store, par.store);
        assert_eq!(seq.signature_postings, par.signature_postings);
        assert_eq!(seq.buffer_postings, par.buffer_postings);
        assert_eq!(seq.summary, par.summary);
        let query = dataset.record(11);
        assert_eq!(seq.search_record(query, 0.4), par.search_record(query, 0.4));
    }

    #[test]
    fn scratch_reuse_across_queries_matches_fresh_scratch() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        let mut reused = QueryScratch::new();
        for qid in 0..100 {
            let query = dataset.record(qid);
            let with_reuse = index.search_filtered_with(query, 0.4, &mut reused);
            let mut fresh = QueryScratch::new();
            let with_fresh = index.search_filtered_with(query, 0.4, &mut fresh);
            assert_eq!(
                with_reuse, with_fresh,
                "query {qid}: reused scratch leaked state from earlier queries"
            );
        }
    }

    #[test]
    fn search_elements_handles_unsorted_and_duplicated_input() {
        let dataset = skewed_dataset(60);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let sorted: Vec<u32> = dataset.record(5).elements().to_vec();
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        shuffled.push(sorted[0]); // duplicate
        assert_eq!(
            index.search_elements(&sorted, 0.5),
            index.search_elements(&shuffled, 0.5)
        );
    }

    #[test]
    fn self_query_is_always_found() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.25));
        for qid in (0..100).step_by(13) {
            let hits = index.search_record(dataset.record(qid), 0.5);
            assert!(
                hits.iter().any(|h| h.record_id == qid),
                "record {qid} should match itself at t*=0.5 (true containment is 1.0)"
            );
        }
    }

    #[test]
    fn zero_threshold_returns_everything() {
        let dataset = skewed_dataset(40);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.2));
        let hits = index.search_record(dataset.record(0), 0.0);
        assert_eq!(hits.len(), 40);
    }

    #[test]
    fn estimates_track_exact_containment() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let mut total_err = 0.0;
        let mut count = 0;
        for qid in (0..100).step_by(9) {
            let query = dataset.record(qid);
            for rid in (0..100).step_by(11) {
                let est = index.estimate_containment(query, rid);
                let exact = containment(query, dataset.record(rid));
                total_err += (est - exact).abs();
                count += 1;
            }
        }
        let mae = total_err / count as f64;
        assert!(mae < 0.12, "mean absolute error {mae} too large");
    }

    #[test]
    fn fixed_buffer_config_is_respected() {
        let dataset = skewed_dataset(80);
        let index = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.2).buffer_size(16),
        );
        assert_eq!(index.summary().buffer_size, 16);
        assert_eq!(index.sketcher().layout().size(), 16);
        let gkmv_only = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.2).buffer_size(0),
        );
        assert_eq!(gkmv_only.summary().buffer_size, 0);
    }

    #[test]
    fn insert_extends_index_and_is_searchable() {
        let dataset = skewed_dataset(60);
        let mut index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let new_record = Record::new((0..50u32).map(|i| i * 3).collect());
        let id = index.insert(&new_record);
        assert_eq!(id, 60);
        assert_eq!(index.num_records(), 61);
        let hits = index.search_record(&new_record, 0.8);
        assert!(hits.iter().any(|h| h.record_id == id));
    }

    #[test]
    fn topk_returns_best_records_in_order() {
        let dataset = skewed_dataset(100);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.3));
        let query = dataset.record(10);
        let top = index.search_topk(query, 5);
        assert_eq!(top.len(), 5);
        // The query's own record has true containment 1.0 and must rank first.
        assert_eq!(top[0].record_id, 10);
        // Scores are non-increasing.
        assert!(top
            .windows(2)
            .all(|w| w[0].estimated_containment >= w[1].estimated_containment));
        // Equal scores are tie-broken by ascending record id.
        assert!(top.windows(2).all(|w| {
            w[0].estimated_containment != w[1].estimated_containment
                || w[0].record_id < w[1].record_id
        }));
        // k larger than the candidate set is clamped, k = 0 is empty.
        assert!(index.search_topk(query, 10_000).len() <= 100);
        assert!(index.search_topk(query, 0).is_empty());
    }

    #[test]
    fn topk_matches_between_filtered_and_scan_modes() {
        let dataset = skewed_dataset(80);
        let filtered = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.4));
        let scan = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.4).candidate_filter(false),
        );
        let query = dataset.record(7);
        let a: Vec<usize> = filtered
            .search_topk(query, 10)
            .iter()
            .map(|h| h.record_id)
            .collect();
        let b: Vec<usize> = scan
            .search_topk(query, 10)
            .iter()
            .map(|h| h.record_id)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn trait_object_usage() {
        let dataset = paper_dataset();
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(1.0));
        let boxed: Box<dyn ContainmentIndex> = Box::new(index);
        assert_eq!(boxed.name(), "GB-KMV");
        assert!(boxed.space_elements() > 0.0);
        assert!(!boxed.search(&[1, 2, 3, 5, 7, 9], 0.5).is_empty());
    }

    #[test]
    fn config_budget_resolution() {
        let c = GbKmvConfig::with_space_fraction(0.05);
        assert_eq!(c.resolve_budget(1000), 50);
        let c2 = GbKmvConfig::with_budget_elements(123);
        assert_eq!(c2.resolve_budget(1000), 123);
        // Budgets never resolve to zero.
        let c3 = GbKmvConfig::with_space_fraction(0.0);
        assert_eq!(c3.resolve_budget(1000), 1);
    }
}
