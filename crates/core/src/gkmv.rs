//! The G-KMV sketch: KMV with a **global hash-value threshold**.
//!
//! Plain KMV wastes budget because a record pair can only use
//! `k = min(k_X, k_Y)` values during estimation (Equation 8): giving a large
//! record a bigger signature does not help a pair involving a small record.
//! The paper's first technique (Section IV-A(2)) fixes this by choosing a
//! single global threshold `τ` and storing, for every record,
//! *all* hash values `≤ τ`:
//!
//! ```text
//! L_X = { h(e) : e ∈ X, h(e) ≤ τ }
//! ```
//!
//! Because every record keeps everything below `τ`, the k-th smallest value
//! of `L_Q ∪ L_X` is guaranteed to be the k-th smallest value of
//! `h(Q ∪ X)` for `k = |L_Q ∪ L_X|` (Theorem 2), so the pair estimator can
//! use this much larger `k` (Equation 24), which strictly reduces variance
//! (Lemma 2) and in expectation beats the uniform-k KMV allocation whenever
//! the element-frequency skew `α1 ≤ 3.4` (Theorem 3).
//!
//! The threshold itself is chosen from the space budget: `τ` is the largest
//! value such that the total number of stored hash values does not exceed
//! the budget `b` ([`GlobalThreshold::from_budget`]).

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, ElementId, Record};
use crate::hash::{unit_hash, Hasher64};
use crate::kmv::sorted_intersection_count;

/// The global hash-value threshold `τ` shared by every record's G-KMV sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalThreshold {
    /// The threshold as a raw 64-bit hash value (inclusive upper bound).
    pub raw: u64,
}

impl GlobalThreshold {
    /// A threshold that keeps every hash value (useful for exhaustive
    /// sketches and tests).
    pub fn keep_all() -> Self {
        GlobalThreshold { raw: u64::MAX }
    }

    /// The threshold mapped to the unit interval.
    pub fn unit(&self) -> f64 {
        unit_hash(self.raw)
    }

    /// Whether a hash value passes the threshold.
    #[inline]
    pub fn admits(&self, hash: u64) -> bool {
        hash <= self.raw
    }

    /// Chooses the largest `τ` such that the total number of stored hash
    /// values across the dataset is at most `budget` (measured in hash
    /// values, i.e. "elements" in the paper's accounting).
    ///
    /// This is Line 3 of Algorithm 1. The implementation materialises the
    /// hash of every (record, element) incidence and selects the budget-th
    /// smallest with a linear-time selection; if the budget covers every
    /// incidence the threshold saturates at `u64::MAX`.
    pub fn from_budget(dataset: &Dataset, hasher: &Hasher64, budget: usize) -> Self {
        Self::from_budget_excluding(dataset, hasher, budget, |_| false)
    }

    /// Like [`GlobalThreshold::from_budget`] but ignoring elements for which
    /// `excluded` returns true — used by GB-KMV, whose buffered
    /// high-frequency elements are kept exactly and must not consume G-KMV
    /// budget.
    pub fn from_budget_excluding<F>(
        dataset: &Dataset,
        hasher: &Hasher64,
        budget: usize,
        excluded: F,
    ) -> Self
    where
        F: Fn(ElementId) -> bool,
    {
        if budget == 0 {
            return GlobalThreshold { raw: 0 };
        }
        let mut hashes: Vec<u64> = Vec::new();
        for record in dataset.records() {
            for e in record.iter() {
                if !excluded(e) {
                    hashes.push(hasher.hash(e));
                }
            }
        }
        if hashes.is_empty() || budget >= hashes.len() {
            return GlobalThreshold::keep_all();
        }
        // The budget-th smallest hash value (0-indexed budget-1) is the
        // largest admissible threshold: keeping it and everything below uses
        // exactly `budget` slots — unless an element shared by several
        // records ties at the threshold, in which case admitting the tied
        // value would overshoot; step just below it to stay within budget.
        let idx = budget - 1;
        let (_, nth, _) = hashes.select_nth_unstable(idx);
        let mut raw = *nth;
        let admitted = hashes.iter().filter(|&&h| h <= raw).count();
        if admitted > budget {
            raw = raw.saturating_sub(1);
        }
        GlobalThreshold { raw }
    }
}

/// A G-KMV sketch: every hash value of the record that is at most the global
/// threshold, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GKmvSketch {
    hashes: Vec<u64>,
    /// True when the threshold admitted every element of the record, in which
    /// case pairwise estimates with another saturated sketch are exact.
    saturated: bool,
}

/// Intermediate quantities of a pairwise G-KMV estimation (Equations 24–25).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GKmvPairEstimate {
    /// `k = |L_Q ∪ L_X|`.
    pub k: usize,
    /// `K∩ = |L_Q ∩ L_X|`.
    pub k_intersection: usize,
    /// The k-th smallest hash value of the union on the unit interval.
    pub u_k: f64,
    /// Estimated `|Q ∪ X|`.
    pub union_estimate: f64,
    /// Estimated `|Q ∩ X|` (Equation 25).
    pub intersection_estimate: f64,
    /// Whether both sketches were saturated, making the estimate exact.
    pub exact: bool,
}

impl GKmvPairEstimate {
    /// Computes the Equation 24–25 estimate from the scalar summaries of a
    /// sketch pair: the two signature lengths, the number of shared hash
    /// values `K∩`, the largest hash value present in either sketch, and
    /// whether *both* sketches are saturated.
    ///
    /// This is the single source of the estimator arithmetic: both
    /// [`GKmvSketch::pair_estimate`] (which derives the parts from two
    /// materialised sketches) and the accumulator-based query engine in
    /// [`crate::index`] (which accumulates `K∩` term-at-a-time over inverted
    /// postings and reads the other parts from the flattened
    /// [`crate::store::SketchStore`]) call it, so the two paths are
    /// bit-identical by construction.
    pub fn from_parts(
        len_a: usize,
        len_b: usize,
        k_intersection: usize,
        max_hash: u64,
        both_saturated: bool,
    ) -> Self {
        let k = len_a + len_b - k_intersection;
        if both_saturated {
            // Both sketches kept everything: the counts are exact.
            return GKmvPairEstimate {
                k,
                k_intersection,
                u_k: 1.0,
                union_estimate: k as f64,
                intersection_estimate: k_intersection as f64,
                exact: true,
            };
        }
        if k == 0 {
            return GKmvPairEstimate {
                k: 0,
                k_intersection: 0,
                u_k: 1.0,
                union_estimate: 0.0,
                intersection_estimate: 0.0,
                exact: false,
            };
        }
        let u_k = unit_hash(max_hash);
        let (union_estimate, intersection_estimate) = if k >= 2 {
            let union = (k as f64 - 1.0) / u_k;
            let inter = (k_intersection as f64 / k as f64) * union;
            (union, inter)
        } else {
            (k as f64, k_intersection as f64)
        };
        GKmvPairEstimate {
            k,
            k_intersection,
            u_k,
            union_estimate,
            intersection_estimate,
            exact: false,
        }
    }
}

impl GKmvSketch {
    /// Builds the G-KMV sketch of a record.
    pub fn from_record(record: &Record, hasher: &Hasher64, threshold: GlobalThreshold) -> Self {
        Self::from_record_excluding(record, hasher, threshold, |_| false)
    }

    /// Builds the G-KMV sketch of a record, skipping elements for which
    /// `excluded` returns true (the buffered elements in GB-KMV).
    pub fn from_record_excluding<F>(
        record: &Record,
        hasher: &Hasher64,
        threshold: GlobalThreshold,
        excluded: F,
    ) -> Self
    where
        F: Fn(ElementId) -> bool,
    {
        Self::from_elements_excluding(record.elements(), hasher, threshold, excluded)
    }

    /// Builds the G-KMV sketch from a borrowed element slice (duplicates are
    /// tolerated — hash values are deduplicated), skipping elements for which
    /// `excluded` returns true. This is the allocation-light path used by
    /// [`crate::index::GbKmvIndex::search_elements`].
    pub fn from_elements_excluding<F>(
        elements: &[ElementId],
        hasher: &Hasher64,
        threshold: GlobalThreshold,
        excluded: F,
    ) -> Self
    where
        F: Fn(ElementId) -> bool,
    {
        let mut hashes = Vec::new();
        let mut admitted_all = true;
        for e in elements.iter().copied() {
            if excluded(e) {
                continue;
            }
            let h = hasher.hash(e);
            if threshold.admits(h) {
                hashes.push(h);
            } else {
                admitted_all = false;
            }
        }
        hashes.sort_unstable();
        hashes.dedup();
        GKmvSketch {
            hashes,
            saturated: admitted_all,
        }
    }

    /// Builds a sketch from raw hash values (for tests and serialisation).
    pub fn from_hashes(mut hashes: Vec<u64>, saturated: bool) -> Self {
        hashes.sort_unstable();
        hashes.dedup();
        GKmvSketch { hashes, saturated }
    }

    /// Number of stored hash values.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the sketch stores no hash values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Whether the threshold admitted every (non-excluded) element.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// The stored hash values in ascending order.
    #[inline]
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Pairwise estimation with `k = |L_Q ∪ L_X|` (Equations 24–25).
    pub fn pair_estimate(&self, other: &GKmvSketch) -> GKmvPairEstimate {
        let k_intersection = sorted_intersection_count(&self.hashes, &other.hashes);
        // U(k) is the largest hash value present in either sketch: because
        // both sketches keep *all* values below τ, the k-th smallest value of
        // the union of the sketches is the k-th smallest value of h(Q ∪ X)
        // (Theorem 2).
        let max_hash = self
            .hashes
            .last()
            .copied()
            .unwrap_or(0)
            .max(other.hashes.last().copied().unwrap_or(0));
        GKmvPairEstimate::from_parts(
            self.hashes.len(),
            other.hashes.len(),
            k_intersection,
            max_hash,
            self.saturated && other.saturated,
        )
    }

    /// Estimated intersection size `|Q ∩ X|` (Equation 25).
    pub fn intersection_estimate(&self, other: &GKmvSketch) -> f64 {
        self.pair_estimate(other).intersection_estimate
    }

    /// Estimated containment similarity `C(Q, X)` given the (known) query
    /// size (Equation 26).
    pub fn containment_estimate(&self, other: &GKmvSketch, query_size: usize) -> f64 {
        if query_size == 0 {
            return 0.0;
        }
        self.intersection_estimate(other) / query_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Record};
    use crate::hash::Hasher64;

    fn rec(v: &[u32]) -> Record {
        Record::new(v.to_vec())
    }

    fn big_dataset() -> Dataset {
        // 50 records of 200 elements each with heavy overlap.
        Dataset::from_records(
            (0..50u32)
                .map(|i| (i * 20..i * 20 + 200).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn threshold_respects_budget() {
        let dataset = big_dataset();
        let hasher = Hasher64::new(1);
        let budget = 500;
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, budget);
        let stored: usize = dataset
            .records()
            .iter()
            .map(|r| {
                r.iter()
                    .filter(|&e| threshold.admits(hasher.hash(e)))
                    .count()
            })
            .sum();
        assert!(stored <= budget, "stored {stored} exceeds budget {budget}");
        // The threshold is maximal: admitting the next larger hash value
        // would exceed the budget. We check it is at least 80% utilised.
        assert!(
            stored * 10 >= budget * 8,
            "budget badly under-utilised: {stored}/{budget}"
        );
    }

    #[test]
    fn huge_budget_saturates_threshold() {
        let dataset = big_dataset();
        let hasher = Hasher64::new(1);
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, usize::MAX / 2);
        assert_eq!(threshold.raw, u64::MAX);
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let dataset = big_dataset();
        let hasher = Hasher64::new(1);
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, 0);
        let sketch = GKmvSketch::from_record(dataset.record(0), &hasher, threshold);
        // Only elements hashing to exactly 0 could get through; none do here.
        assert!(sketch.len() <= 1);
    }

    #[test]
    fn excluding_elements_frees_budget() {
        let dataset = big_dataset();
        let hasher = Hasher64::new(1);
        let budget = 500;
        let plain = GlobalThreshold::from_budget(&dataset, &hasher, budget);
        // Exclude half the universe: the same budget now admits a larger τ.
        let excl =
            GlobalThreshold::from_budget_excluding(&dataset, &hasher, budget, |e| e % 2 == 0);
        assert!(excl.raw >= plain.raw);
    }

    #[test]
    fn saturated_sketches_give_exact_counts() {
        let hasher = Hasher64::new(2);
        let threshold = GlobalThreshold::keep_all();
        let q = GKmvSketch::from_record(&rec(&[1, 2, 3, 5, 7, 9]), &hasher, threshold);
        let x = GKmvSketch::from_record(&rec(&[1, 2, 3, 4, 7]), &hasher, threshold);
        let pair = q.pair_estimate(&x);
        assert!(pair.exact);
        assert_eq!(pair.intersection_estimate, 4.0);
        assert_eq!(pair.union_estimate, 7.0);
        assert!((q.containment_estimate(&x, 6) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pair_estimate_accuracy_on_large_sets() {
        let hasher = Hasher64::new(3);
        let a = rec(&(0..5000).collect::<Vec<_>>());
        let b = rec(&(2500..7500).collect::<Vec<_>>());
        let dataset = Dataset::from_records(vec![
            (0..5000).collect::<Vec<_>>(),
            (2500..7500).collect::<Vec<_>>(),
        ]);
        // 20% budget.
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, 2000);
        let sa = GKmvSketch::from_record(&a, &hasher, threshold);
        let sb = GKmvSketch::from_record(&b, &hasher, threshold);
        let est = sa.intersection_estimate(&sb);
        assert!(
            (est - 2500.0).abs() / 2500.0 < 0.25,
            "intersection estimate {est} too far from 2500"
        );
        let union_est = sa.pair_estimate(&sb).union_estimate;
        assert!(
            (union_est - 7500.0).abs() / 7500.0 < 0.25,
            "union estimate {union_est} too far from 7500"
        );
    }

    #[test]
    fn gkmv_uses_larger_k_than_kmv_under_same_budget() {
        // The core claim behind Theorem 3: for the same total budget, the k
        // value available to a record pair is larger with a global threshold
        // than with the uniform ⌊b/m⌋ allocation.
        use crate::kmv::KmvSketch;
        let dataset = big_dataset();
        let hasher = Hasher64::new(4);
        let budget = 1000;
        let per_record_k = budget / dataset.len();
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, budget);

        let a = dataset.record(0);
        let b = dataset.record(1);
        let kmv_k = KmvSketch::from_record(a, &hasher, per_record_k)
            .pair_estimate(&KmvSketch::from_record(b, &hasher, per_record_k))
            .k;
        let gkmv_k = GKmvSketch::from_record(a, &hasher, threshold)
            .pair_estimate(&GKmvSketch::from_record(b, &hasher, threshold))
            .k;
        assert!(
            gkmv_k >= kmv_k,
            "G-KMV k ({gkmv_k}) should be at least the KMV k ({kmv_k})"
        );
    }

    #[test]
    fn empty_sketches() {
        let a = GKmvSketch::default();
        let b = GKmvSketch::from_hashes(vec![1, 2, 3], false);
        assert_eq!(a.pair_estimate(&b).intersection_estimate, 0.0);
        assert_eq!(a.containment_estimate(&b, 0), 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn paper_example_4_gkmv_estimate() {
        // Figure 3 / Example 4: with τ = 0.5 the signatures of Q and X1 are
        // {0.10, 0.24, 0.33} and {0.24, 0.33, 0.47}; k = 4, U(k) = 0.47,
        // K∩ = 2 → D̂∩ = 2/4 · 3/0.47 ≈ 3.19 and containment ≈ 0.53.
        // We reproduce the arithmetic by injecting the paper's hash values
        // scaled onto u64.
        fn to_raw(u: f64) -> u64 {
            (u * 1.844_674_407_370_955_2e19) as u64
        }
        let q = GKmvSketch::from_hashes(vec![to_raw(0.10), to_raw(0.24), to_raw(0.33)], false);
        let x1 = GKmvSketch::from_hashes(vec![to_raw(0.24), to_raw(0.33), to_raw(0.47)], false);
        let pair = q.pair_estimate(&x1);
        assert_eq!(pair.k, 4);
        assert_eq!(pair.k_intersection, 2);
        assert!((pair.u_k - 0.47).abs() < 1e-6);
        assert!((pair.intersection_estimate - 3.19).abs() < 0.02);
        let containment = pair.intersection_estimate / 6.0;
        assert!((containment - 0.53).abs() < 0.01);
    }
}
