//! Set-valued records and datasets.
//!
//! The GB-KMV paper models every object (document, user, web table column, …)
//! as a *record*: a finite set of elements drawn from a universe
//! `E = {e_1, …, e_n}`. This module provides:
//!
//! * [`Record`] — a sorted, deduplicated set of [`ElementId`]s,
//! * [`Dataset`] — an ordered collection of records, the unit over which
//!   sketches and indexes are built,
//! * [`DatasetBuilder`] — an interning builder that converts arbitrary string
//!   (or otherwise hashable) tokens into dense element identifiers, mirroring
//!   the preprocessing the paper applies to its text corpora (tokenisation,
//!   stop-word removal, dropping records shorter than a minimum size).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identifier of an element of the universe `E`.
///
/// Elements are dense `u32` identifiers; the [`DatasetBuilder`] maps raw
/// tokens onto this space. Using a fixed-width integer keeps records compact
/// (4 bytes per element, the same accounting unit the paper uses for its
/// space budget).
pub type ElementId = u32;

/// Identifier of a record within a [`Dataset`] (its position).
pub type RecordId = usize;

/// A record: a sorted, deduplicated set of elements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Record {
    elements: Vec<ElementId>,
}

impl Record {
    /// Creates a record from an arbitrary list of elements, sorting and
    /// deduplicating it.
    pub fn new(mut elements: Vec<ElementId>) -> Self {
        elements.sort_unstable();
        elements.dedup();
        Record { elements }
    }

    /// Creates a record from elements that are already sorted and unique.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the input is not strictly increasing.
    pub fn from_sorted(elements: Vec<ElementId>) -> Self {
        debug_assert!(
            elements.windows(2).all(|w| w[0] < w[1]),
            "elements must be strictly increasing"
        );
        Record { elements }
    }

    /// Number of (distinct) elements in the record.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the record is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The elements of the record in increasing order.
    #[inline]
    pub fn elements(&self) -> &[ElementId] {
        &self.elements
    }

    /// Whether the record contains `element`.
    #[inline]
    pub fn contains(&self, element: ElementId) -> bool {
        self.elements.binary_search(&element).is_ok()
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.elements.iter().copied()
    }

    /// Size of the intersection with another record (both are sorted, so this
    /// is a linear merge).
    pub fn intersection_size(&self, other: &Record) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.elements, &other.elements);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with another record.
    pub fn union_size(&self, other: &Record) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }
}

impl From<Vec<ElementId>> for Record {
    fn from(elements: Vec<ElementId>) -> Self {
        Record::new(elements)
    }
}

impl<'a> IntoIterator for &'a Record {
    type Item = ElementId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ElementId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter().copied()
    }
}

/// An ordered collection of records, the substrate every sketch and index in
/// this library is built over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    records: Vec<Record>,
    /// Number of distinct elements observed across all records
    /// (`max element id + 1` when built through [`DatasetBuilder`]).
    universe_size: usize,
}

impl Dataset {
    /// Builds a dataset from raw element lists. Records are sorted and
    /// deduplicated; empty records are kept (the evaluation profiles never
    /// generate them, but the type does not forbid them).
    pub fn from_records<I, R>(records: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: Into<Record>,
    {
        let records: Vec<Record> = records.into_iter().map(Into::into).collect();
        let universe_size = records
            .iter()
            .flat_map(|r| r.elements().last().copied())
            .max()
            .map(|max| max as usize + 1)
            .unwrap_or(0);
        Dataset {
            records,
            universe_size,
        }
    }

    /// Number of records `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in insertion order.
    #[inline]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// A single record by id.
    #[inline]
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id]
    }

    /// Upper bound on element identifiers plus one (the universe size `n` when
    /// identifiers are dense).
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Total number of element occurrences `N = Σ_X |X|`.
    pub fn total_elements(&self) -> usize {
        self.records.iter().map(Record::len).sum()
    }

    /// Average record length.
    pub fn avg_record_len(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_elements() as f64 / self.records.len() as f64
        }
    }

    /// Iterates over `(RecordId, &Record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records.iter().enumerate()
    }

    /// Removes records shorter than `min_len`, mirroring the paper's
    /// preprocessing ("records with size less than 10 are discarded").
    /// Returns the number of records removed.
    pub fn retain_min_len(&mut self, min_len: usize) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.len() >= min_len);
        before - self.records.len()
    }

    /// Appends a record, used by the dynamic-data maintenance path
    /// (Remark "Processing Dynamic Data" in the paper). Returns its id.
    pub fn push(&mut self, record: Record) -> RecordId {
        if let Some(&max) = record.elements().last() {
            self.universe_size = self.universe_size.max(max as usize + 1);
        }
        self.records.push(record);
        self.records.len() - 1
    }
}

impl std::ops::Index<RecordId> for Dataset {
    type Output = Record;

    fn index(&self, id: RecordId) -> &Record {
        &self.records[id]
    }
}

/// Builds a [`Dataset`] from raw string tokens, interning each distinct token
/// as a dense [`ElementId`].
///
/// This mirrors the preprocessing used for the paper's text datasets: each
/// record is a bag of tokens (words, q-grams, tags, movie ids, …); stop words
/// may be removed and short records dropped before indexing.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    interner: HashMap<String, ElementId>,
    records: Vec<Record>,
    stop_words: Vec<String>,
    min_record_len: usize,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers stop words that are dropped from every record (the paper
    /// removes English stop words such as "the" from its text corpora).
    pub fn with_stop_words<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.stop_words = words.into_iter().map(Into::into).collect();
        self
    }

    /// Sets a minimum record length; shorter records are silently skipped
    /// when [`DatasetBuilder::finish`] is called (the paper uses 10).
    pub fn with_min_record_len(mut self, min_len: usize) -> Self {
        self.min_record_len = min_len;
        self
    }

    /// Number of distinct tokens interned so far.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Adds a record made of string-like tokens. Returns the number of
    /// distinct, non-stop-word elements it contained.
    pub fn add_record<I, S>(&mut self, tokens: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut elements = Vec::new();
        for token in tokens {
            let token = token.as_ref();
            if self.stop_words.iter().any(|w| w == token) {
                continue;
            }
            let next_id = self.interner.len() as ElementId;
            let id = *self.interner.entry(token.to_owned()).or_insert(next_id);
            elements.push(id);
        }
        let record = Record::new(elements);
        let len = record.len();
        self.records.push(record);
        len
    }

    /// Adds a record that is already a set of element ids (no interning).
    pub fn add_element_record(&mut self, elements: Vec<ElementId>) {
        self.records.push(Record::new(elements));
    }

    /// Finalises the dataset, applying the minimum-record-length filter.
    pub fn finish(self) -> Dataset {
        let min_len = self.min_record_len;
        let records: Vec<Record> = self
            .records
            .into_iter()
            .filter(|r| r.len() >= min_len)
            .collect();
        Dataset::from_records(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sorts_and_dedups() {
        let r = Record::new(vec![5, 1, 3, 1, 5, 2]);
        assert_eq!(r.elements(), &[1, 2, 3, 5]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn record_contains_uses_binary_search() {
        let r = Record::new(vec![10, 20, 30]);
        assert!(r.contains(20));
        assert!(!r.contains(25));
    }

    #[test]
    fn intersection_and_union_sizes_match_paper_example() {
        // Example 1 from the paper: Q = {e1,e2,e3,e5,e7,e9}, X1 = {e1,e2,e3,e4,e7}.
        let q = Record::new(vec![1, 2, 3, 5, 7, 9]);
        let x1 = Record::new(vec![1, 2, 3, 4, 7]);
        assert_eq!(q.intersection_size(&x1), 4);
        assert_eq!(q.union_size(&x1), 7);
    }

    #[test]
    fn empty_record_behaviour() {
        let e = Record::default();
        let r = Record::new(vec![1, 2]);
        assert!(e.is_empty());
        assert_eq!(e.intersection_size(&r), 0);
        assert_eq!(e.union_size(&r), 2);
    }

    #[test]
    fn dataset_universe_size_is_max_plus_one() {
        let d = Dataset::from_records(vec![vec![1, 2], vec![9, 3]]);
        assert_eq!(d.universe_size(), 10);
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_elements(), 4);
    }

    #[test]
    fn dataset_avg_record_len() {
        let d = Dataset::from_records(vec![vec![1, 2, 3], vec![4]]);
        assert!((d.avg_record_len() - 2.0).abs() < 1e-12);
        let empty = Dataset::default();
        assert_eq!(empty.avg_record_len(), 0.0);
    }

    #[test]
    fn dataset_retain_min_len_drops_short_records() {
        let mut d = Dataset::from_records(vec![vec![1], vec![1, 2, 3], vec![4, 5]]);
        let removed = d.retain_min_len(2);
        assert_eq!(removed, 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dataset_push_updates_universe() {
        let mut d = Dataset::from_records(vec![vec![1, 2]]);
        let id = d.push(Record::new(vec![100]));
        assert_eq!(id, 1);
        assert_eq!(d.universe_size(), 101);
    }

    #[test]
    fn builder_interns_tokens_and_filters() {
        let mut b = DatasetBuilder::new()
            .with_stop_words(["the", "and"])
            .with_min_record_len(2);
        b.add_record(["five", "guys", "burgers", "and", "fries"]);
        b.add_record(["the"]); // only stop words -> dropped by min length
        b.add_record(["five", "kitchen", "berkeley"]);
        let d = b.finish();
        assert_eq!(d.len(), 2);
        // "five" appears in both records and must map to the same id.
        let first = d.record(0);
        let second = d.record(1);
        assert_eq!(first.intersection_size(second), 1);
    }

    #[test]
    fn builder_vocabulary_size_counts_distinct_tokens() {
        let mut b = DatasetBuilder::new();
        b.add_record(["a", "b", "a"]);
        b.add_record(["b", "c"]);
        assert_eq!(b.vocabulary_size(), 3);
    }

    #[test]
    fn index_operator_returns_record() {
        let d = Dataset::from_records(vec![vec![1, 2], vec![3]]);
        assert_eq!(d[1].elements(), &[3]);
    }
}
