//! Flattened, cache-dense storage for the per-record GB-KMV sketches.
//!
//! The first version of the index kept a `Vec<GbKmvRecordSketch>`: every
//! record owned two heap allocations (its G-KMV hash vector and its buffer
//! bitmap), so a query touching thousands of candidates chased thousands of
//! pointers. [`SketchStore`] replaces that with a CSR-style layout:
//!
//! * one contiguous arena of sorted `u64` hash values with per-record
//!   offsets (`hashes(id)` is a plain subslice),
//! * one contiguous arena of buffer bitmap words with a fixed per-record
//!   stride (the buffer layout is shared by the whole index),
//! * a parallel array of per-record scalars (`record_size` / `gkmv_len` /
//!   `max_hash` / `saturated`, packed into one `RecordMeta` per record) so
//!   the O(1) per-candidate estimate of the accumulator query engine reads
//!   one cache line and never touches the arenas at all.
//!
//! [`QueryScratch`] is the reusable per-query accumulator state: dense
//! epoch-stamped arrays over record ids, so clearing between queries is a
//! single epoch increment instead of an O(m) wipe or a fresh hash map.

use serde::{Deserialize, Serialize};

use crate::buffer::ElementBuffer;
use crate::gbkmv::GbKmvRecordSketch;
use crate::gkmv::{GKmvPairEstimate, GKmvSketch};
use crate::kmv::sorted_intersection_count;

/// CSR-style flattened sketch storage (one entry per record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchStore {
    /// Concatenated, per-record-sorted G-KMV hash values.
    hash_arena: Vec<u64>,
    /// `hash_offsets[i]..hash_offsets[i + 1]` is record `i`'s hash range.
    hash_offsets: Vec<usize>,
    /// Concatenated buffer bitmap words, `words_per_record` per record.
    buffer_arena: Vec<u64>,
    /// Fixed per-record stride of `buffer_arena` (the shared layout's word
    /// count; 0 when the buffer is disabled).
    words_per_record: usize,
    /// Per-record scalar summaries, packed into one struct per record so the
    /// O(1) candidate finish of the accumulator engine touches a single cache
    /// line instead of four parallel arrays.
    meta: Vec<RecordMeta>,
}

/// Per-record scalar summary: everything the accumulator's O(1) finish needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RecordMeta {
    /// Largest stored hash value (0 for an empty signature).
    max_hash: u64,
    /// True record size `|X|` (the search size filter needs it).
    record_size: u32,
    /// Number of stored hash values, `|L_X|`.
    gkmv_len: u32,
    /// Whether the global threshold admitted every element of the record.
    saturated: bool,
}

impl Default for SketchStore {
    /// An empty store with a zero-width buffer stride. A derived `Default`
    /// would leave `hash_offsets` empty, violating the invariant that it
    /// always starts with a leading 0.
    fn default() -> Self {
        Self::new(0)
    }
}

impl SketchStore {
    /// An empty store whose buffers have `words_per_record` 64-bit words.
    pub fn new(words_per_record: usize) -> Self {
        SketchStore {
            hash_arena: Vec::new(),
            hash_offsets: vec![0],
            buffer_arena: Vec::new(),
            words_per_record,
            meta: Vec::new(),
        }
    }

    /// Builds the store from materialised per-record sketches (the parallel
    /// build produces sketches in chunks; appending here is a memcpy per
    /// arena, so it is not worth parallelising).
    pub fn from_sketches<'a, I>(words_per_record: usize, sketches: I) -> Self
    where
        I: IntoIterator<Item = &'a GbKmvRecordSketch>,
    {
        let mut store = SketchStore::new(words_per_record);
        for sketch in sketches {
            store.push(sketch);
        }
        store
    }

    /// Appends one record's sketch and returns its id.
    pub fn push(&mut self, sketch: &GbKmvRecordSketch) -> usize {
        let id = self.len();
        let hashes = sketch.gkmv.hashes();
        self.hash_arena.extend_from_slice(hashes);
        self.hash_offsets.push(self.hash_arena.len());
        let words = sketch.buffer.words();
        let copied = words.len().min(self.words_per_record);
        // A real assert, not debug_assert: push is a build-time path, and
        // silently dropping set bits would make every later search undercount
        // the buffer overlap.
        assert!(
            words[copied..].iter().all(|&w| w == 0),
            "sketch buffer has set bits beyond the store's {} word stride \
             (was it built under a wider BufferLayout?)",
            self.words_per_record
        );
        self.buffer_arena.extend_from_slice(&words[..copied]);
        self.buffer_arena
            .extend(std::iter::repeat_n(0, self.words_per_record - copied));
        self.meta.push(RecordMeta {
            max_hash: hashes.last().copied().unwrap_or(0),
            record_size: sketch.record_size as u32,
            gkmv_len: hashes.len() as u32,
            saturated: sketch.gkmv.is_saturated(),
        });
        id
    }

    /// Number of stored records.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the store holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Record `id`'s sorted G-KMV hash values.
    #[inline]
    pub fn hashes(&self, id: usize) -> &[u64] {
        &self.hash_arena[self.hash_offsets[id]..self.hash_offsets[id + 1]]
    }

    /// Record `id`'s buffer bitmap words (`words_per_record` of them).
    #[inline]
    pub fn buffer_words(&self, id: usize) -> &[u64] {
        let start = id * self.words_per_record;
        &self.buffer_arena[start..start + self.words_per_record]
    }

    /// Record `id`'s true size `|X|`.
    #[inline]
    pub fn record_size(&self, id: usize) -> usize {
        self.meta[id].record_size as usize
    }

    /// Number of hash values in record `id`'s signature, `|L_X|`.
    #[inline]
    pub fn gkmv_len(&self, id: usize) -> usize {
        self.meta[id].gkmv_len as usize
    }

    /// Largest hash value of record `id`'s signature (0 when empty).
    #[inline]
    pub fn max_hash(&self, id: usize) -> u64 {
        self.meta[id].max_hash
    }

    /// Whether record `id`'s signature kept every non-buffered element.
    #[inline]
    pub fn is_saturated(&self, id: usize) -> bool {
        self.meta[id].saturated
    }

    /// Total number of hash values across all records (space accounting).
    #[inline]
    pub fn total_hashes(&self) -> usize {
        self.hash_arena.len()
    }

    /// The fixed buffer stride in 64-bit words.
    #[inline]
    pub fn words_per_record(&self) -> usize {
        self.words_per_record
    }

    /// `|H_Q ∩ H_X|` for a query bitmap against record `id`: popcount of the
    /// word-wise AND, entirely over the flat arena.
    #[inline]
    pub fn buffer_intersection_count(&self, query_words: &[u64], id: usize) -> usize {
        self.buffer_words(id)
            .iter()
            .zip(query_words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Full pairwise estimate of a query signature against record `id` via a
    /// sorted merge over the hash arena (the scan/reference query paths).
    ///
    /// `query_max_hash` is the query signature's largest hash value (0 when
    /// empty) and `query_saturated` whether its threshold admitted every
    /// element — the same scalars the store keeps per record.
    pub fn gkmv_pair_estimate(
        &self,
        query_hashes: &[u64],
        query_max_hash: u64,
        query_saturated: bool,
        id: usize,
    ) -> GKmvPairEstimate {
        let record_hashes = self.hashes(id);
        let k_intersection = sorted_intersection_count(query_hashes, record_hashes);
        GKmvPairEstimate::from_parts(
            query_hashes.len(),
            record_hashes.len(),
            k_intersection,
            query_max_hash.max(self.meta[id].max_hash),
            query_saturated && self.meta[id].saturated,
        )
    }

    /// Materialises record `id`'s sketch (diagnostics and serialisation; the
    /// query paths never need this).
    pub fn record_sketch(&self, id: usize) -> GbKmvRecordSketch {
        GbKmvRecordSketch {
            buffer: ElementBuffer::from_words(self.buffer_words(id).to_vec()),
            gkmv: GKmvSketch::from_hashes(self.hashes(id).to_vec(), self.meta[id].saturated),
            record_size: self.record_size(id),
        }
    }
}

/// Reusable per-query accumulator state for the term-at-a-time query engine.
///
/// The dense arrays (`stamp`, `k_int`) are indexed by record id. A candidate
/// is "live" for the current query iff its stamp equals the current epoch,
/// so starting a new query is one epoch increment — no O(m) clear, no
/// per-query hash map. Records touched by the current query are tracked in
/// `touched` (insertion order; callers sort as their output contract
/// requires). Only `K∩` is accumulated: the buffer overlap is cheaper to
/// recompute at finish time as a popcount over the [`SketchStore`] words, so
/// buffer postings contribute candidate membership only
/// ([`QueryScratch::add_candidate`]).
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    epoch: u32,
    stamp: Vec<u32>,
    k_int: Vec<u32>,
    touched: Vec<u32>,
}

impl QueryScratch {
    /// An empty scratch; it grows to the index size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts accumulation for a new query over `num_records` records:
    /// bumps the epoch (handling wrap-around) and grows the arrays if the
    /// index has grown since the last query.
    pub fn begin(&mut self, num_records: usize) {
        if self.stamp.len() < num_records {
            self.stamp.resize(num_records, 0);
            self.k_int.resize(num_records, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The 32-bit epoch wrapped: stale stamps could collide with the
            // new epoch, so wipe them once every 2^32 queries.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }

    /// Registers `rid` as touched by the current query, zeroing its
    /// accumulators on first touch.
    #[inline]
    fn activate(&mut self, rid: u32) {
        let i = rid as usize;
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.k_int[i] = 0;
            self.touched.push(rid);
        }
    }

    /// Accumulates one shared G-KMV signature hash for `rid` (one posting).
    #[inline]
    pub fn add_signature_hit(&mut self, rid: u32) {
        self.activate(rid);
        self.k_int[rid as usize] += 1;
    }

    /// Registers `rid` as a candidate without accumulating any overlap — used
    /// by the buffer-posting walk, whose overlap is cheaper to recompute at
    /// finish time as a 1–2 word popcount over the CSR store.
    #[inline]
    pub fn add_candidate(&mut self, rid: u32) {
        self.activate(rid);
    }

    /// The records touched by the current query, in first-touch order.
    #[inline]
    pub fn candidates(&self) -> &[u32] {
        &self.touched
    }

    /// `K∩` accumulated for `rid` in the current query.
    #[inline]
    pub fn k_intersection(&self, rid: u32) -> usize {
        self.k_int[rid as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferLayout;
    use crate::dataset::Record;
    use crate::gkmv::GlobalThreshold;
    use crate::hash::Hasher64;

    fn sketch(elements: &[u32], layout: &BufferLayout) -> GbKmvRecordSketch {
        let record = Record::new(elements.to_vec());
        let hasher = Hasher64::new(9);
        GbKmvRecordSketch {
            buffer: layout.build_buffer(&record),
            gkmv: GKmvSketch::from_record_excluding(
                &record,
                &hasher,
                GlobalThreshold::keep_all(),
                |e| layout.contains(e),
            ),
            record_size: record.len(),
        }
    }

    #[test]
    fn store_round_trips_sketches() {
        let layout = BufferLayout::new(vec![1, 2, 3]);
        let sketches = vec![
            sketch(&[1, 2, 10, 20], &layout),
            sketch(&[3, 30], &layout),
            sketch(&[40, 50, 60], &layout),
        ];
        let store = SketchStore::from_sketches(layout.words(), &sketches);
        assert_eq!(store.len(), 3);
        for (id, s) in sketches.iter().enumerate() {
            assert_eq!(
                &store.record_sketch(id),
                s,
                "record {id} did not round-trip"
            );
            assert_eq!(store.hashes(id), s.gkmv.hashes());
            assert_eq!(store.gkmv_len(id), s.gkmv.len());
            assert_eq!(store.record_size(id), s.record_size);
            assert_eq!(
                store.max_hash(id),
                s.gkmv.hashes().last().copied().unwrap_or(0)
            );
            assert_eq!(store.is_saturated(id), s.gkmv.is_saturated());
        }
        assert_eq!(
            store.total_hashes(),
            sketches.iter().map(|s| s.gkmv.len()).sum::<usize>()
        );
    }

    #[test]
    fn pair_estimate_matches_sketch_pair_estimate() {
        let layout = BufferLayout::new(vec![1, 2]);
        let a = sketch(&[1, 2, 10, 20, 30], &layout);
        let b = sketch(&[2, 20, 30, 40], &layout);
        let store = SketchStore::from_sketches(layout.words(), [&a, &b]);
        let via_store = store.gkmv_pair_estimate(
            a.gkmv.hashes(),
            a.gkmv.hashes().last().copied().unwrap_or(0),
            a.gkmv.is_saturated(),
            1,
        );
        let direct = a.gkmv.pair_estimate(&b.gkmv);
        assert_eq!(via_store, direct);
        assert_eq!(
            store.buffer_intersection_count(a.buffer.words(), 1),
            a.buffer.intersection_count(&b.buffer)
        );
    }

    #[test]
    fn default_store_upholds_offset_invariant() {
        let layout = BufferLayout::empty();
        let mut store = SketchStore::default();
        let id = store.push(&sketch(&[5, 6, 7], &layout));
        assert_eq!(store.hashes(id).len(), 3);
        assert_eq!(store.gkmv_len(id), 3);
    }

    #[test]
    fn zero_width_buffer_store() {
        let layout = BufferLayout::empty();
        let a = sketch(&[5, 6], &layout);
        let store = SketchStore::from_sketches(0, [&a]);
        assert_eq!(store.buffer_words(0), &[] as &[u64]);
        assert_eq!(store.buffer_intersection_count(&[], 0), 0);
    }

    #[test]
    fn scratch_accumulates_and_resets_by_epoch() {
        let mut scratch = QueryScratch::new();
        scratch.begin(5);
        scratch.add_signature_hit(3);
        scratch.add_signature_hit(3);
        scratch.add_candidate(3);
        scratch.add_candidate(1);
        assert_eq!(scratch.candidates(), &[3, 1]);
        assert_eq!(scratch.k_intersection(3), 2);
        assert_eq!(scratch.k_intersection(1), 0);

        // Next query: previous accumulations must be invisible.
        scratch.begin(5);
        assert!(scratch.candidates().is_empty());
        scratch.add_signature_hit(3);
        assert_eq!(
            scratch.k_intersection(3),
            1,
            "stale K∩ leaked across epochs"
        );
    }

    #[test]
    fn scratch_epoch_wraparound_does_not_leak() {
        let mut scratch = QueryScratch::new();
        scratch.begin(4);
        scratch.add_signature_hit(2);
        // Force the epoch to the wrap point: the next begin() overflows to 0
        // and must wipe the stamps instead of treating stale ones as live.
        scratch.epoch = u32::MAX;
        scratch.stamp[2] = u32::MAX; // make record 2's stamp look "current"
        scratch.k_int[2] = 99;
        scratch.begin(4);
        assert_eq!(scratch.epoch, 1);
        assert!(scratch.candidates().is_empty());
        scratch.add_signature_hit(2);
        assert_eq!(
            scratch.k_intersection(2),
            1,
            "epoch wrap leaked a stale accumulator"
        );
    }

    #[test]
    fn scratch_grows_with_index() {
        let mut scratch = QueryScratch::new();
        scratch.begin(2);
        scratch.add_candidate(1);
        scratch.begin(10);
        scratch.add_signature_hit(9);
        assert_eq!(scratch.candidates(), &[9]);
        assert_eq!(scratch.k_intersection(9), 1);
    }
}
