//! Flattened, cache-dense, **size-ordered** storage for the per-record
//! GB-KMV sketches.
//!
//! The first version of the index kept a `Vec<GbKmvRecordSketch>`: every
//! record owned two heap allocations (its G-KMV hash vector and its buffer
//! bitmap), so a query touching thousands of candidates chased thousands of
//! pointers. [`SketchStore`] replaces that with a CSR-style layout:
//!
//! * one contiguous arena of sorted `u64` hash values with per-slot offsets
//!   (`hashes(slot)` is a plain subslice),
//! * one contiguous arena of buffer bitmap words with a fixed per-slot
//!   stride (the buffer layout is shared by the whole index),
//! * a parallel array of per-slot scalars (`record_size` / `gkmv_len` /
//!   `max_hash` / `saturated`, packed into one [`RecordMeta`] per slot) so
//!   the O(1) per-candidate estimate of the accumulator query engine reads
//!   one cache line and never touches the arenas at all.
//!
//! # Slots vs. record ids
//!
//! Internally, records occupy **slots** ordered by *descending record size*
//! (ties broken by ascending record id), not by record id. Because the
//! inverted posting lists of the query engine store ascending slot numbers,
//! every posting list is automatically size-sorted, and the prune stage of
//! the query pipeline ([`crate::index`]) can cut a whole posting-list suffix
//! with one binary search: a containment query at threshold `t*` can only be
//! matched by records of size at least `⌈t*·|Q|⌉`, i.e. by a *prefix* of the
//! slots ([`SketchStore::live_prefix`]).
//!
//! The old↔new id permutation is kept right here in the store:
//! [`SketchStore::record_id`] maps a slot back to the record id it holds and
//! [`SketchStore::slot_of`] maps a record id to its slot. Record ids are
//! *local* to the store — a sharded index adds its shard's base offset.
//!
//! # Document frequencies
//!
//! The store also tracks, for every signature hash value, the number of its
//! records containing it ([`SketchStore::hash_df`]) — the *document
//! frequency*. When the index builds inverted postings over the slots, a
//! hash's df is by construction the length of its posting list, so the
//! prefix-filter stage of the query pipeline ([`crate::index::candidates`])
//! can order a query's hashes from rarest to most frequent without touching
//! the posting lists themselves. The counts are maintained through every
//! build path (bulk [`SketchStore::from_sketches`] and the dynamic
//! [`SketchStore::insert`] splice), so the ordering stays exact under
//! dynamic maintenance.
//!
//! [`SketchView`] is the borrowed, non-allocating view of one stored sketch
//! (arena subslices plus the [`RecordMeta`] scalars); materialising a
//! [`GbKmvRecordSketch`] via [`SketchStore::record_sketch`] clones both
//! arenas' slices and is only meant for diagnostics and serialisation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::arena::ArenaVec;
use crate::buffer::ElementBuffer;
use crate::gbkmv::GbKmvRecordSketch;
use crate::gkmv::{GKmvPairEstimate, GKmvSketch};
use crate::kmv::sorted_intersection_count;
use crate::mem::MemUsage;

pub use crate::scratch::QueryScratch;

/// Per-slot scalar summary: everything the accumulator's O(1) finish needs.
///
/// `#[repr(C)]` pins the field layout (8-byte `max_hash`, two `u32`s, one
/// `bool` byte, 7 padding bytes — 24 bytes total) so the persistence layer
/// can borrow a saved meta section zero-copy as `&[RecordMeta]`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordMeta {
    /// Largest stored hash value (0 for an empty signature).
    pub max_hash: u64,
    /// True record size `|X|` (the search size filter needs it).
    pub record_size: u32,
    /// Number of stored hash values, `|L_X|`.
    pub gkmv_len: u32,
    /// Whether the global threshold admitted every element of the record.
    pub saturated: bool,
}

/// Borrowed, non-allocating view of one stored sketch: the two arena
/// subslices plus the per-slot scalars. This is what internal callers use
/// instead of the allocating [`SketchStore::record_sketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchView<'a> {
    /// The slot's sorted G-KMV hash values (borrowed from the hash arena).
    pub hashes: &'a [u64],
    /// The slot's buffer bitmap words (borrowed from the buffer arena).
    pub buffer_words: &'a [u64],
    /// The slot's scalar summary.
    pub meta: RecordMeta,
}

/// CSR-style flattened sketch storage, one slot per record, slots ordered by
/// descending record size (see the module docs for the slot/record-id
/// distinction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchStore {
    /// Concatenated, per-slot-sorted G-KMV hash values.
    hash_arena: ArenaVec<u64>,
    /// `hash_offsets[s]..hash_offsets[s + 1]` is slot `s`'s hash range
    /// (`u64` rather than `usize` so the on-disk arena layout is
    /// platform-independent and borrows zero-copy).
    hash_offsets: ArenaVec<u64>,
    /// Concatenated buffer bitmap words, `words_per_record` per slot.
    buffer_arena: ArenaVec<u64>,
    /// Fixed per-slot stride of `buffer_arena` (the shared layout's word
    /// count; 0 when the buffer is disabled).
    words_per_record: usize,
    /// Per-slot scalar summaries. `meta[s].record_size` is non-increasing in
    /// `s` — the invariant behind [`SketchStore::live_prefix`].
    meta: ArenaVec<RecordMeta>,
    /// Slot → the (store-local) record id held in that slot.
    record_ids: ArenaVec<u32>,
    /// (Store-local) record id → the slot holding it.
    slots: ArenaVec<u32>,
    /// Signature hash value → number of records containing it (document
    /// frequency). Equals the posting-list length when postings are built.
    hash_df: HashMap<u64, u32>,
}

impl Default for SketchStore {
    /// An empty store with a zero-width buffer stride. A derived `Default`
    /// would leave `hash_offsets` empty, violating the invariant that it
    /// always starts with a leading 0.
    fn default() -> Self {
        Self::new(0)
    }
}

impl SketchStore {
    /// An empty store whose buffers have `words_per_record` 64-bit words.
    pub fn new(words_per_record: usize) -> Self {
        SketchStore {
            hash_arena: ArenaVec::default(),
            hash_offsets: vec![0].into(),
            buffer_arena: ArenaVec::default(),
            words_per_record,
            meta: ArenaVec::default(),
            record_ids: ArenaVec::default(),
            slots: ArenaVec::default(),
            hash_df: HashMap::new(),
        }
    }

    /// Reassembles a store from its flat parts — the persistence layer's
    /// constructor. The arenas are typically `ArenaVec::Borrowed` views into
    /// a loaded arena file; callers guarantee the CSR invariants (validated
    /// structurally by `crate::persist` before this is reached).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_arena_parts(
        hash_arena: ArenaVec<u64>,
        hash_offsets: ArenaVec<u64>,
        buffer_arena: ArenaVec<u64>,
        words_per_record: usize,
        meta: ArenaVec<RecordMeta>,
        record_ids: ArenaVec<u32>,
        slots: ArenaVec<u32>,
        hash_df: HashMap<u64, u32>,
    ) -> Self {
        SketchStore {
            hash_arena,
            hash_offsets,
            buffer_arena,
            words_per_record,
            meta,
            record_ids,
            slots,
            hash_df,
        }
    }

    /// The raw hash arena (persistence and accounting).
    pub(crate) fn hash_arena_slice(&self) -> &[u64] {
        &self.hash_arena
    }

    /// The raw CSR offset array (persistence and accounting).
    pub(crate) fn hash_offsets_slice(&self) -> &[u64] {
        &self.hash_offsets
    }

    /// The raw buffer bitmap arena (persistence and accounting).
    pub(crate) fn buffer_arena_slice(&self) -> &[u64] {
        &self.buffer_arena
    }

    /// The raw per-slot metadata array (persistence and accounting).
    pub(crate) fn meta_slice(&self) -> &[RecordMeta] {
        &self.meta
    }

    /// The slot → record-id permutation (persistence and accounting).
    pub(crate) fn record_ids_slice(&self) -> &[u32] {
        &self.record_ids
    }

    /// The record-id → slot permutation (persistence and accounting).
    pub(crate) fn slots_slice(&self) -> &[u32] {
        &self.slots
    }

    /// The full document-frequency map (persistence).
    pub(crate) fn hash_df_map(&self) -> &HashMap<u64, u32> {
        &self.hash_df
    }

    /// Per-component content bytes of this store, including how much is
    /// borrowed zero-copy from a loaded arena file (see [`MemUsage`]).
    #[must_use]
    pub fn mem_usage(&self) -> MemUsage {
        MemUsage {
            hash_arena_bytes: std::mem::size_of_val(self.hash_arena.as_slice()),
            hash_offsets_bytes: std::mem::size_of_val(self.hash_offsets.as_slice()),
            buffer_arena_bytes: std::mem::size_of_val(self.buffer_arena.as_slice()),
            meta_bytes: std::mem::size_of_val(self.meta.as_slice()),
            permutation_bytes: std::mem::size_of_val(self.record_ids.as_slice())
                + std::mem::size_of_val(self.slots.as_slice()),
            hash_df_bytes: self.hash_df.len()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>()),
            borrowed_bytes: self.hash_arena.borrowed_bytes()
                + self.hash_offsets.borrowed_bytes()
                + self.buffer_arena.borrowed_bytes()
                + self.meta.borrowed_bytes()
                + self.record_ids.borrowed_bytes()
                + self.slots.borrowed_bytes(),
            ..MemUsage::default()
        }
    }

    /// Builds the store from materialised per-record sketches in record-id
    /// order; slot `0` receives the largest record. The parallel build
    /// produces sketches in chunks; appending here is a memcpy per arena, so
    /// it is not worth parallelising.
    pub fn from_sketches<'a, I>(words_per_record: usize, sketches: I) -> Self
    where
        I: IntoIterator<Item = &'a GbKmvRecordSketch>,
    {
        let sketches: Vec<&GbKmvRecordSketch> = sketches.into_iter().collect();
        let mut order: Vec<u32> = (0..sketches.len() as u32).collect();
        // Stable sort by descending size keeps ascending record id within a
        // size class, so the slot order is deterministic.
        order.sort_by_key(|&i| std::cmp::Reverse(sketches[i as usize].record_size));

        let mut store = SketchStore::new(words_per_record);
        store.slots = vec![0; sketches.len()].into();
        for &rid in &order {
            let slot = store.meta.len() as u32;
            store.append_slot(sketches[rid as usize], rid);
            store.slots[rid as usize] = slot;
        }
        store
    }

    /// Appends one sketch as the next slot, recording the record id it
    /// holds. Callers maintain the size-order invariant and the `slots`
    /// reverse map.
    fn append_slot(&mut self, sketch: &GbKmvRecordSketch, record_id: u32) {
        let hashes = sketch.gkmv.hashes();
        // Per-record hashes are deduplicated (the GKmvSketch invariant), so
        // each occurrence is one more containing record.
        for &h in hashes {
            *self.hash_df.entry(h).or_insert(0) += 1;
        }
        self.hash_arena.to_mut().extend_from_slice(hashes);
        self.hash_offsets
            .to_mut()
            .push(self.hash_arena.len() as u64);
        let words = self.padded_words(sketch);
        let pad = self.pad_len(sketch);
        self.buffer_arena.to_mut().extend_from_slice(words);
        self.buffer_arena
            .to_mut()
            .extend(std::iter::repeat_n(0, pad));
        self.meta.to_mut().push(Self::meta_of(sketch));
        self.record_ids.to_mut().push(record_id);
    }

    /// The prefix of the sketch's buffer words that fits the stride.
    ///
    /// A real assert, not debug_assert: this is a build-time path, and
    /// silently dropping set bits would make every later search undercount
    /// the buffer overlap.
    fn padded_words<'a>(&self, sketch: &'a GbKmvRecordSketch) -> &'a [u64] {
        let words = sketch.buffer.words();
        let copied = words.len().min(self.words_per_record);
        assert!(
            words[copied..].iter().all(|&w| w == 0),
            "sketch buffer has set bits beyond the store's {} word stride \
             (was it built under a wider BufferLayout?)",
            self.words_per_record
        );
        &words[..copied]
    }

    fn pad_len(&self, sketch: &GbKmvRecordSketch) -> usize {
        self.words_per_record - sketch.buffer.words().len().min(self.words_per_record)
    }

    fn meta_of(sketch: &GbKmvRecordSketch) -> RecordMeta {
        let hashes = sketch.gkmv.hashes();
        RecordMeta {
            max_hash: hashes.last().copied().unwrap_or(0),
            record_size: sketch.record_size as u32,
            gkmv_len: hashes.len() as u32,
            saturated: sketch.gkmv.is_saturated(),
        }
    }

    /// Inserts one record's sketch with the next record id, splicing it into
    /// the slot that keeps the size-order invariant, and returns
    /// `(record_id, slot)`.
    ///
    /// This is the dynamic-maintenance path: the new record carries the
    /// largest record id, so inserting *after* every slot of equal size
    /// reproduces exactly the slot order a from-scratch
    /// [`SketchStore::from_sketches`] build over the grown dataset would
    /// choose. Arena splicing is O(store size); callers that bulk-load should
    /// use `from_sketches`.
    pub fn insert(&mut self, sketch: &GbKmvRecordSketch) -> (usize, usize) {
        let record_id = self.len() as u32;
        let size = sketch.record_size as u32;
        let slot = self.meta.partition_point(|m| m.record_size >= size);

        let hashes = sketch.gkmv.hashes();
        for &h in hashes {
            *self.hash_df.entry(h).or_insert(0) += 1;
        }
        let pos = self.hash_offsets[slot] as usize;
        self.hash_arena
            .to_mut()
            .splice(pos..pos, hashes.iter().copied());
        self.hash_offsets
            .to_mut()
            .insert(slot + 1, (pos + hashes.len()) as u64);
        for offset in &mut self.hash_offsets.to_mut()[slot + 2..] {
            *offset += hashes.len() as u64;
        }

        let wpos = slot * self.words_per_record;
        let pad = self.pad_len(sketch);
        let words: Vec<u64> = self
            .padded_words(sketch)
            .iter()
            .copied()
            .chain(std::iter::repeat_n(0, pad))
            .collect();
        self.buffer_arena.to_mut().splice(wpos..wpos, words);

        self.meta.to_mut().insert(slot, Self::meta_of(sketch));
        self.record_ids.to_mut().insert(slot, record_id);
        for s in self.slots.to_mut().iter_mut() {
            if *s >= slot as u32 {
                *s += 1;
            }
        }
        self.slots.to_mut().push(slot as u32);
        (record_id as usize, slot)
    }

    /// Number of stored records.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the store holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The (store-local) record id held in `slot`.
    #[inline]
    pub fn record_id(&self, slot: usize) -> usize {
        self.record_ids[slot] as usize
    }

    /// The slot holding (store-local) `record_id`.
    #[inline]
    pub fn slot_of(&self, record_id: usize) -> usize {
        self.slots[record_id] as usize
    }

    /// Document frequency of a signature hash value: the number of stored
    /// records whose signature contains `hash` (0 for an unseen hash). When
    /// the index builds inverted postings this is exactly the posting-list
    /// length, so the query pipeline's prefix filter orders a query's hashes
    /// by rarity without touching the lists.
    #[inline]
    pub fn hash_df(&self, hash: u64) -> usize {
        self.hash_df.get(&hash).map_or(0, |&df| df as usize)
    }

    /// Number of leading slots whose record size is at least `min_size` —
    /// the prune stage's cutoff. Slots `live_prefix(s)..` all hold records
    /// strictly smaller than `min_size` (the size-order invariant), so the
    /// candidate stage truncates every posting list at this slot number.
    #[inline]
    pub fn live_prefix(&self, min_size: usize) -> usize {
        let min = min_size.min(u32::MAX as usize) as u32;
        self.meta.partition_point(|m| m.record_size >= min)
    }

    /// Slot `slot`'s sorted G-KMV hash values.
    #[inline]
    pub fn hashes(&self, slot: usize) -> &[u64] {
        &self.hash_arena[self.hash_offsets[slot] as usize..self.hash_offsets[slot + 1] as usize]
    }

    /// Slot `slot`'s buffer bitmap words (`words_per_record` of them).
    #[inline]
    pub fn buffer_words(&self, slot: usize) -> &[u64] {
        let start = slot * self.words_per_record;
        &self.buffer_arena[start..start + self.words_per_record]
    }

    /// The true record size `|X|` of the record in `slot`.
    #[inline]
    pub fn record_size(&self, slot: usize) -> usize {
        self.meta[slot].record_size as usize
    }

    /// Number of hash values in slot `slot`'s signature, `|L_X|`.
    #[inline]
    pub fn gkmv_len(&self, slot: usize) -> usize {
        self.meta[slot].gkmv_len as usize
    }

    /// Largest hash value of slot `slot`'s signature (0 when empty).
    #[inline]
    pub fn max_hash(&self, slot: usize) -> u64 {
        self.meta[slot].max_hash
    }

    /// Whether slot `slot`'s signature kept every non-buffered element.
    #[inline]
    pub fn is_saturated(&self, slot: usize) -> bool {
        self.meta[slot].saturated
    }

    /// Borrowed view of the sketch in `slot` — the non-allocating
    /// counterpart of [`SketchStore::record_sketch`].
    #[inline]
    pub fn view(&self, slot: usize) -> SketchView<'_> {
        SketchView {
            hashes: self.hashes(slot),
            buffer_words: self.buffer_words(slot),
            meta: self.meta[slot],
        }
    }

    /// Borrowed view of the sketch of (store-local) `record_id`.
    #[inline]
    pub fn view_of_record(&self, record_id: usize) -> SketchView<'_> {
        self.view(self.slot_of(record_id))
    }

    /// Total number of hash values across all records (space accounting).
    #[inline]
    pub fn total_hashes(&self) -> usize {
        self.hash_arena.len()
    }

    /// The fixed buffer stride in 64-bit words.
    #[inline]
    pub fn words_per_record(&self) -> usize {
        self.words_per_record
    }

    /// `|H_Q ∩ H_X|` for a query bitmap against the record in `slot`:
    /// popcount of the word-wise AND, entirely over the flat arena.
    #[inline]
    pub fn buffer_intersection_count(&self, query_words: &[u64], slot: usize) -> usize {
        self.buffer_words(slot)
            .iter()
            .zip(query_words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Full pairwise estimate of a query signature against the record in
    /// `slot` via a sorted merge over the hash arena (the scan/reference
    /// query paths).
    ///
    /// `query_max_hash` is the query signature's largest hash value (0 when
    /// empty) and `query_saturated` whether its threshold admitted every
    /// element — the same scalars the store keeps per slot.
    pub fn gkmv_pair_estimate(
        &self,
        query_hashes: &[u64],
        query_max_hash: u64,
        query_saturated: bool,
        slot: usize,
    ) -> GKmvPairEstimate {
        let record_hashes = self.hashes(slot);
        let k_intersection = sorted_intersection_count(query_hashes, record_hashes);
        GKmvPairEstimate::from_parts(
            query_hashes.len(),
            record_hashes.len(),
            k_intersection,
            query_max_hash.max(self.meta[slot].max_hash),
            query_saturated && self.meta[slot].saturated,
        )
    }

    /// Materialises the sketch of (store-local) `record_id` (diagnostics and
    /// serialisation; the query paths use [`SketchStore::view`] and never
    /// allocate).
    pub fn record_sketch(&self, record_id: usize) -> GbKmvRecordSketch {
        let view = self.view_of_record(record_id);
        GbKmvRecordSketch {
            buffer: ElementBuffer::from_words(view.buffer_words.to_vec()),
            gkmv: GKmvSketch::from_hashes(view.hashes.to_vec(), view.meta.saturated),
            record_size: view.meta.record_size as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferLayout;
    use crate::dataset::Record;
    use crate::gkmv::GlobalThreshold;
    use crate::hash::Hasher64;

    fn sketch(elements: &[u32], layout: &BufferLayout) -> GbKmvRecordSketch {
        let record = Record::new(elements.to_vec());
        let hasher = Hasher64::new(9);
        GbKmvRecordSketch {
            buffer: layout.build_buffer(&record),
            gkmv: GKmvSketch::from_record_excluding(
                &record,
                &hasher,
                GlobalThreshold::keep_all(),
                |e| layout.contains(e),
            ),
            record_size: record.len(),
        }
    }

    #[test]
    fn store_round_trips_sketches() {
        let layout = BufferLayout::new(vec![1, 2, 3]);
        let sketches = vec![
            sketch(&[1, 2, 10, 20], &layout),
            sketch(&[3, 30], &layout),
            sketch(&[40, 50, 60], &layout),
        ];
        let store = SketchStore::from_sketches(layout.words(), &sketches);
        assert_eq!(store.len(), 3);
        for (rid, s) in sketches.iter().enumerate() {
            assert_eq!(
                &store.record_sketch(rid),
                s,
                "record {rid} did not round-trip"
            );
            let slot = store.slot_of(rid);
            assert_eq!(store.record_id(slot), rid, "permutation is not inverse");
            assert_eq!(store.hashes(slot), s.gkmv.hashes());
            assert_eq!(store.gkmv_len(slot), s.gkmv.len());
            assert_eq!(store.record_size(slot), s.record_size);
            assert_eq!(
                store.max_hash(slot),
                s.gkmv.hashes().last().copied().unwrap_or(0)
            );
            assert_eq!(store.is_saturated(slot), s.gkmv.is_saturated());
            let view = store.view_of_record(rid);
            assert_eq!(view.hashes, s.gkmv.hashes());
            assert_eq!(view.buffer_words, store.buffer_words(slot));
            assert_eq!(view.meta.record_size as usize, s.record_size);
        }
        assert_eq!(
            store.total_hashes(),
            sketches.iter().map(|s| s.gkmv.len()).sum::<usize>()
        );
    }

    #[test]
    fn slots_are_ordered_by_descending_size_with_id_tiebreak() {
        let layout = BufferLayout::empty();
        let sketches = vec![
            sketch(&[1, 2], &layout),           // record 0, size 2
            sketch(&[10, 11, 12, 13], &layout), // record 1, size 4
            sketch(&[20, 21], &layout),         // record 2, size 2 (ties record 0)
            sketch(&[30, 31, 32], &layout),     // record 3, size 3
        ];
        let store = SketchStore::from_sketches(0, &sketches);
        let slot_order: Vec<usize> = (0..store.len()).map(|s| store.record_id(s)).collect();
        assert_eq!(slot_order, vec![1, 3, 0, 2]);
        let sizes: Vec<usize> = (0..store.len()).map(|s| store.record_size(s)).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn live_prefix_matches_linear_scan() {
        let layout = BufferLayout::empty();
        let sketches: Vec<GbKmvRecordSketch> = (0..20u32)
            .map(|i| {
                let elems: Vec<u32> = (0..=(i * 7) % 13).map(|j| 100 + i * 50 + j).collect();
                sketch(&elems, &layout)
            })
            .collect();
        let store = SketchStore::from_sketches(0, &sketches);
        for min_size in 0..16 {
            let expected = (0..store.len())
                .filter(|&s| store.record_size(s) >= min_size)
                .count();
            assert_eq!(store.live_prefix(min_size), expected, "min_size {min_size}");
            // All live slots form a prefix.
            assert!((0..store.live_prefix(min_size)).all(|s| store.record_size(s) >= min_size));
        }
        assert_eq!(store.live_prefix(usize::MAX), 0);
    }

    #[test]
    fn hash_df_counts_containing_records_through_build_and_insert() {
        let layout = BufferLayout::empty();
        let sketches: Vec<GbKmvRecordSketch> =
            [&[1u32, 2, 3][..], &[2, 3, 4], &[3, 4, 5, 6], &[7, 8]]
                .iter()
                .map(|els| sketch(els, &layout))
                .collect();
        let mut store = SketchStore::from_sketches(0, &sketches[..3]);
        store.insert(&sketches[3]);

        // Reference: count containing records straight off the sketches.
        let mut expected: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for s in &sketches {
            for &h in s.gkmv.hashes() {
                *expected.entry(h).or_insert(0) += 1;
            }
        }
        for (&h, &df) in &expected {
            assert_eq!(store.hash_df(h), df, "df mismatch for hash {h:#x}");
        }
        assert_eq!(store.hash_df(0xDEAD_BEEF), 0, "unseen hash must have df 0");
    }

    #[test]
    fn insert_matches_from_scratch_build() {
        let layout = BufferLayout::new(vec![1, 2, 3]);
        let sketches: Vec<GbKmvRecordSketch> = [
            &[1u32, 2, 10, 20][..],
            &[3, 30],
            &[40, 50, 60, 70, 80],
            &[2, 3],
            &[5, 6, 7],
        ]
        .iter()
        .map(|els| sketch(els, &layout))
        .collect();

        let from_scratch = SketchStore::from_sketches(layout.words(), &sketches);
        let mut incremental = SketchStore::from_sketches(layout.words(), &sketches[..2]);
        for (expected_id, s) in sketches.iter().enumerate().skip(2) {
            let (rid, slot) = incremental.insert(s);
            assert_eq!(rid, expected_id);
            assert_eq!(incremental.record_id(slot), expected_id);
        }
        assert_eq!(
            incremental, from_scratch,
            "incremental inserts diverged from the from-scratch build"
        );
    }

    #[test]
    fn pair_estimate_matches_sketch_pair_estimate() {
        let layout = BufferLayout::new(vec![1, 2]);
        let a = sketch(&[1, 2, 10, 20, 30], &layout);
        let b = sketch(&[2, 20, 30, 40], &layout);
        let store = SketchStore::from_sketches(layout.words(), [&a, &b]);
        let b_slot = store.slot_of(1);
        let via_store = store.gkmv_pair_estimate(
            a.gkmv.hashes(),
            a.gkmv.hashes().last().copied().unwrap_or(0),
            a.gkmv.is_saturated(),
            b_slot,
        );
        let direct = a.gkmv.pair_estimate(&b.gkmv);
        assert_eq!(via_store, direct);
        assert_eq!(
            store.buffer_intersection_count(a.buffer.words(), b_slot),
            a.buffer.intersection_count(&b.buffer)
        );
    }

    #[test]
    fn default_store_upholds_offset_invariant() {
        let layout = BufferLayout::empty();
        let mut store = SketchStore::default();
        let (rid, slot) = store.insert(&sketch(&[5, 6, 7], &layout));
        assert_eq!(rid, 0);
        assert_eq!(store.hashes(slot).len(), 3);
        assert_eq!(store.gkmv_len(slot), 3);
    }

    #[test]
    fn mem_usage_reports_content_sizes_and_no_borrows_for_built_stores() {
        let layout = BufferLayout::new(vec![1, 2, 3]);
        let sketches = vec![sketch(&[1, 2, 10, 20], &layout), sketch(&[3, 30], &layout)];
        let store = SketchStore::from_sketches(layout.words(), &sketches);
        let usage = store.mem_usage();
        assert_eq!(usage.hash_arena_bytes, store.total_hashes() * 8);
        assert_eq!(usage.hash_offsets_bytes, (store.len() + 1) * 8);
        assert_eq!(
            usage.buffer_arena_bytes,
            store.len() * store.words_per_record() * 8
        );
        assert_eq!(
            usage.meta_bytes,
            store.len() * std::mem::size_of::<RecordMeta>()
        );
        assert_eq!(usage.permutation_bytes, store.len() * 2 * 4);
        assert_eq!(usage.borrowed_bytes, 0, "built stores own every arena");
        assert!(usage.total_bytes() > 0);
    }

    #[test]
    fn zero_width_buffer_store() {
        let layout = BufferLayout::empty();
        let a = sketch(&[5, 6], &layout);
        let store = SketchStore::from_sketches(0, [&a]);
        assert_eq!(store.buffer_words(0), &[] as &[u64]);
        assert_eq!(store.buffer_intersection_count(&[], 0), 0);
    }
}
