//! Exact set similarity functions and the containment ⇄ Jaccard transform.
//!
//! The paper (Section II) defines two similarity functions over records:
//!
//! * Jaccard similarity `J(X, Y) = |X ∩ Y| / |X ∪ Y|` (symmetric),
//! * containment similarity `C(X, Y) = |X ∩ Y| / |X|` (asymmetric — the
//!   denominator is the *first* argument, the query in a search).
//!
//! The LSH Ensemble baseline works by transforming a containment threshold
//! into a Jaccard threshold (Equation 12/13); [`SimilarityTransform`]
//! implements that transform in both directions so that both the baseline and
//! the analytical comparisons (Equations 14–21) can share one audited
//! implementation.

use serde::{Deserialize, Serialize};

use crate::dataset::Record;

/// Exact overlap `|X ∩ Y|` of two records.
#[inline]
pub fn overlap(x: &Record, y: &Record) -> usize {
    x.intersection_size(y)
}

/// Exact Jaccard similarity `|X ∩ Y| / |X ∪ Y|`.
///
/// Returns 0 when both records are empty (the union is empty), matching the
/// usual convention.
pub fn jaccard(x: &Record, y: &Record) -> f64 {
    let inter = x.intersection_size(y);
    let union = x.len() + y.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Exact containment similarity `C(Q, X) = |Q ∩ X| / |Q|` of the query `q`
/// in the record `x`.
///
/// Returns 0 when the query is empty.
pub fn containment(q: &Record, x: &Record) -> f64 {
    if q.is_empty() {
        0.0
    } else {
        q.intersection_size(x) as f64 / q.len() as f64
    }
}

/// The containment ⇄ Jaccard transform of Equation 12, parameterised by the
/// record size `x = |X|` (or an upper bound `u` in the LSH-E case) and the
/// query size `q = |Q|`.
///
/// ```text
/// s = t / (x/q + 1 − t)          (containment t → Jaccard s)
/// t = (x/q + 1) · s / (1 + s)    (Jaccard s → containment t)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityTransform {
    /// Record size `x` (or the partition upper bound `u` for LSH-E).
    pub record_size: f64,
    /// Query size `q`.
    pub query_size: f64,
}

impl SimilarityTransform {
    /// Creates a transform for a (record size, query size) pair.
    pub fn new(record_size: usize, query_size: usize) -> Self {
        SimilarityTransform {
            record_size: record_size as f64,
            query_size: query_size.max(1) as f64,
        }
    }

    /// Converts a containment similarity `t` into the equivalent Jaccard
    /// similarity `s` (Equation 12, forward direction).
    pub fn containment_to_jaccard(&self, t: f64) -> f64 {
        let ratio = self.record_size / self.query_size;
        let denom = ratio + 1.0 - t;
        if denom <= 0.0 {
            // t ≥ x/q + 1 can only happen for t > 1 or degenerate sizes;
            // clamp to 1 (the tightest possible Jaccard threshold).
            1.0
        } else {
            (t / denom).clamp(0.0, 1.0)
        }
    }

    /// Converts a Jaccard similarity `s` into the equivalent containment
    /// similarity `t` (Equation 12, backward direction).
    pub fn jaccard_to_containment(&self, s: f64) -> f64 {
        let ratio = self.record_size / self.query_size;
        ((ratio + 1.0) * s / (1.0 + s)).clamp(0.0, 1.0)
    }
}

/// Derives the overlap threshold `θ = ⌈t* · |Q|⌉` used to convert a
/// containment search into an intersection-size search (Equation 23).
///
/// The paper uses `θ = t*·|Q|` and the comparison `|Q ∩ X| ≥ θ`; since
/// intersection sizes are integral, rounding up gives the identical exact
/// predicate while avoiding accidental inclusion through floating-point
/// noise. Estimated intersection sizes are compared against the *unrounded*
/// value, which we also expose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapThreshold {
    /// The raw value `t* · |Q|`.
    pub raw: f64,
    /// The integral threshold `⌈t* · |Q|⌉` for exact comparisons.
    pub exact: usize,
}

impl OverlapThreshold {
    /// Computes the overlap threshold for a query of `query_size` elements
    /// and a containment threshold `t_star ∈ [0, 1]`.
    pub fn new(query_size: usize, t_star: f64) -> Self {
        let raw = t_star * query_size as f64;
        // Guard against 2.999999 ceiling to 3 when t*·q is "really" 3.
        let exact = (raw - 1e-9).ceil().max(0.0) as usize;
        OverlapThreshold { raw, exact }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Record;

    fn rec(v: &[u32]) -> Record {
        Record::new(v.to_vec())
    }

    #[test]
    fn paper_motivating_example_containment_vs_jaccard() {
        // Q = {five, guys}; X = 9-word record containing both; Y = 3-word
        // record containing one. Jaccard prefers Y, containment prefers X.
        let q = rec(&[0, 1]);
        let x = rec(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let y = rec(&[0, 10, 11]);
        assert!((jaccard(&q, &x) - 2.0 / 9.0).abs() < 1e-12);
        assert!((jaccard(&q, &y) - 0.25).abs() < 1e-12);
        assert!((containment(&q, &x) - 1.0).abs() < 1e-12);
        assert!((containment(&q, &y) - 0.5).abs() < 1e-12);
        assert!(jaccard(&q, &y) > jaccard(&q, &x));
        assert!(containment(&q, &x) > containment(&q, &y));
    }

    #[test]
    fn example_1_containment_values() {
        // Figure 1 of the paper.
        let q = rec(&[1, 2, 3, 5, 7, 9]);
        let xs = [
            rec(&[1, 2, 3, 4, 7]),
            rec(&[2, 3, 5]),
            rec(&[2, 4, 5]),
            rec(&[1, 2, 6, 10]),
        ];
        let expected = [4.0 / 6.0, 3.0 / 6.0, 2.0 / 6.0, 2.0 / 6.0];
        for (x, e) in xs.iter().zip(expected) {
            assert!((containment(&q, x) - e).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_inputs_are_zero() {
        let e = Record::default();
        let r = rec(&[1, 2, 3]);
        assert_eq!(containment(&e, &r), 0.0);
        assert_eq!(jaccard(&e, &e), 0.0);
        assert_eq!(overlap(&e, &r), 0);
    }

    #[test]
    fn transform_round_trips() {
        let tr = SimilarityTransform::new(50, 10);
        for &t in &[0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let s = tr.containment_to_jaccard(t);
            let back = tr.jaccard_to_containment(s);
            assert!((back - t).abs() < 1e-9, "t={t} round-tripped to {back}");
        }
    }

    #[test]
    fn transform_matches_exact_similarities() {
        // For actual records the transform must map the true Jaccard to the
        // true containment (Equation 12 is an identity, not an approximation).
        let q = rec(&[1, 2, 3, 5, 7, 9]);
        let x = rec(&[1, 2, 3, 4, 7]);
        let tr = SimilarityTransform::new(x.len(), q.len());
        let s = jaccard(&q, &x);
        let t = containment(&q, &x);
        assert!((tr.jaccard_to_containment(s) - t).abs() < 1e-12);
        assert!((tr.containment_to_jaccard(t) - s).abs() < 1e-12);
    }

    #[test]
    fn transform_monotone_in_threshold() {
        let tr = SimilarityTransform::new(100, 20);
        let mut prev = 0.0;
        for i in 1..=10 {
            let t = i as f64 / 10.0;
            let s = tr.containment_to_jaccard(t);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn larger_upper_bound_gives_smaller_jaccard_threshold() {
        // The LSH-E false-positive mechanism: replacing x with an upper bound
        // u > x lowers the Jaccard threshold, admitting more candidates.
        let t = 0.5;
        let tight = SimilarityTransform::new(50, 10).containment_to_jaccard(t);
        let loose = SimilarityTransform::new(500, 10).containment_to_jaccard(t);
        assert!(loose < tight);
    }

    #[test]
    fn overlap_threshold_rounding() {
        let th = OverlapThreshold::new(6, 0.5);
        assert_eq!(th.exact, 3);
        assert!((th.raw - 3.0).abs() < 1e-12);
        let th2 = OverlapThreshold::new(7, 0.5);
        assert_eq!(th2.exact, 4); // 3.5 rounds up
        let th3 = OverlapThreshold::new(10, 0.0);
        assert_eq!(th3.exact, 0);
    }

    #[test]
    fn transform_clamps_degenerate_threshold() {
        let tr = SimilarityTransform::new(0, 10);
        // record size 0 with t=1: denominator hits zero; we clamp to 1.
        assert_eq!(tr.containment_to_jaccard(1.0), 1.0);
    }
}
