//! Power-law (Zipf) distribution fitting and analytic helpers.
//!
//! The paper's analysis assumes that both the element frequency distribution
//! (`p1(x) = c1·x^{-α1}`) and the record size distribution
//! (`p2(x) = c2·x^{-α2}`) follow power laws, and its Table II reports the
//! fitted exponents of the seven evaluation datasets (using the framework of
//! Clauset, Shalizi and Newman, SIAM Review 2009).
//!
//! This module provides:
//!
//! * [`PowerLawFit`] — the continuous maximum-likelihood estimator
//!   `α̂ = 1 + n / Σ ln(x_i / x_min)` with an `x_min` grid search driven by the
//!   Kolmogorov–Smirnov distance (a lightweight version of the Clauset et al.
//!   procedure), used to report `α1`/`α2` for generated datasets and to feed
//!   the GB-KMV cost model;
//! * [`zipf_moments`] — analytic first and second moments of a truncated
//!   Zipf distribution, used by the closed-form variant of the cost model.

use serde::{Deserialize, Serialize};

/// Result of fitting a power law `p(x) ∝ x^{-α}` for `x ≥ x_min`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// The fitted exponent `α`.
    pub alpha: f64,
    /// The lower cut-off `x_min` chosen by the KS grid search.
    pub x_min: f64,
    /// Number of observations at or above `x_min` used in the fit.
    pub tail_size: usize,
    /// Kolmogorov–Smirnov distance between the empirical tail and the fitted
    /// model (smaller is better).
    pub ks_distance: f64,
}

impl PowerLawFit {
    /// Fits a power law to strictly positive observations.
    ///
    /// Returns `None` when fewer than two distinct positive values are
    /// available (the MLE is undefined).
    pub fn fit(values: &[f64]) -> Option<Self> {
        let mut data: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
        if data.len() < 2 {
            return None;
        }
        // `total_cmp` instead of `partial_cmp().unwrap()`: the positivity
        // filter above already drops NaNs (`NaN > 0.0` is false), but the
        // total order keeps this panic-free even if that filter changes.
        data.sort_by(f64::total_cmp);

        // Candidate x_min values: distinct observed values, capped so the
        // tail keeps at least 10 points (or half the data for tiny inputs).
        let min_tail = (data.len() / 2).clamp(2, 10);
        let mut candidates: Vec<f64> = data.clone();
        candidates.dedup();
        // Limit the grid to at most 50 candidates for speed on huge inputs.
        let step = (candidates.len() / 50).max(1);
        let candidates: Vec<f64> = candidates.iter().step_by(step).copied().collect();

        let mut best: Option<PowerLawFit> = None;
        for &x_min in &candidates {
            let tail: Vec<f64> = data.iter().copied().filter(|&v| v >= x_min).collect();
            if tail.len() < min_tail {
                continue;
            }
            let Some(alpha) = mle_alpha(&tail, x_min) else {
                continue;
            };
            let ks = ks_distance(&tail, x_min, alpha);
            let candidate = PowerLawFit {
                alpha,
                x_min,
                tail_size: tail.len(),
                ks_distance: ks,
            };
            match &best {
                Some(b) if b.ks_distance <= ks => {}
                _ => best = Some(candidate),
            }
        }
        // Fall back to x_min = smallest value if the grid search failed
        // (e.g. every tail was too small).
        best.or_else(|| {
            let x_min = data[0];
            mle_alpha(&data, x_min).map(|alpha| PowerLawFit {
                alpha,
                x_min,
                tail_size: data.len(),
                ks_distance: ks_distance(&data, x_min, alpha),
            })
        })
    }

    /// Fits a power law with a fixed `x_min` (no grid search). Useful when
    /// the cut-off is known, e.g. record sizes that are truncated at 10 by
    /// the preprocessing.
    pub fn fit_with_xmin(values: &[f64], x_min: f64) -> Option<Self> {
        let tail: Vec<f64> = values.iter().copied().filter(|&v| v >= x_min).collect();
        if tail.len() < 2 {
            return None;
        }
        let alpha = mle_alpha(&tail, x_min)?;
        Some(PowerLawFit {
            alpha,
            x_min,
            tail_size: tail.len(),
            ks_distance: ks_distance(&tail, x_min, alpha),
        })
    }
}

/// Continuous MLE `α̂ = 1 + n / Σ ln(x_i / x_min)`.
fn mle_alpha(tail: &[f64], x_min: f64) -> Option<f64> {
    if x_min <= 0.0 {
        return None;
    }
    let log_sum: f64 = tail.iter().map(|&v| (v / x_min).ln().max(0.0)).sum();
    if log_sum <= f64::EPSILON {
        // All observations equal x_min: exponent is unbounded; report a large
        // sentinel rather than None so degenerate-but-valid data still fits.
        return Some(f64::INFINITY);
    }
    Some(1.0 + tail.len() as f64 / log_sum)
}

/// Kolmogorov–Smirnov distance between the empirical CDF of `tail`
/// (sorted ascending) and the fitted power-law CDF
/// `F(x) = 1 − (x/x_min)^{1−α}`.
fn ks_distance(tail: &[f64], x_min: f64, alpha: f64) -> f64 {
    if !alpha.is_finite() || alpha <= 1.0 {
        return f64::INFINITY;
    }
    let mut sorted = tail.to_vec();
    // The tail inherits `fit`'s positivity filter (no NaNs), and the total
    // order is panic-free regardless.
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut max_dist: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let model = 1.0 - (x / x_min).powf(1.0 - alpha);
        let empirical = (i + 1) as f64 / n;
        max_dist = max_dist.max((model - empirical).abs());
    }
    max_dist
}

/// Analytic moments of a truncated Zipf distribution with exponent `alpha`
/// over ranks `1..=n`: returns `(Σ p_i, Σ i·p_i-free mass, Σ f_i, Σ f_i²)`
/// style quantities needed by the closed-form cost model.
///
/// Concretely, for unnormalised weights `w_i = i^{-alpha}`:
/// the function returns `(W1, W2)` where `W1 = Σ_{i=1..n} w_i` and
/// `W2 = Σ_{i=1..n} w_i²`. Large `n` uses an integral approximation past
/// `n = 10_000` to stay `O(1)` per call.
pub fn zipf_moments(alpha: f64, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    let cutoff = n.min(10_000);
    let mut w1 = 0.0;
    let mut w2 = 0.0;
    for i in 1..=cutoff {
        let w = (i as f64).powf(-alpha);
        w1 += w;
        w2 += w * w;
    }
    if n > cutoff {
        // ∫_{cutoff}^{n} x^{-α} dx and ∫ x^{-2α} dx continuations.
        w1 += integral_power(-alpha, cutoff as f64, n as f64);
        w2 += integral_power(-2.0 * alpha, cutoff as f64, n as f64);
    }
    (w1, w2)
}

/// `∫_a^b x^p dx` with the logarithm special case.
fn integral_power(p: f64, a: f64, b: f64) -> f64 {
    if (p + 1.0).abs() < 1e-12 {
        (b / a).ln()
    } else {
        (b.powf(p + 1.0) - a.powf(p + 1.0)) / (p + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic inverse-CDF sampling from a continuous power law
    /// `p(x) ∝ x^{-alpha}`, `x ≥ x_min`, using a simple LCG for uniforms.
    fn sample_power_law(alpha: f64, x_min: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // xorshift64* for the test only; quality is plenty for sampling.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            let u = u.clamp(1e-12, 1.0 - 1e-12);
            out.push(x_min * (1.0 - u).powf(-1.0 / (alpha - 1.0)));
        }
        out
    }

    #[test]
    fn mle_recovers_known_exponent() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0] {
            let data = sample_power_law(alpha, 1.0, 20_000, 42);
            let fit = PowerLawFit::fit_with_xmin(&data, 1.0).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.1,
                "alpha {alpha} fitted as {}",
                fit.alpha
            );
        }
    }

    #[test]
    fn grid_search_recovers_exponent_with_noise_floor() {
        // Mix in sub-x_min noise; the grid search should still land near the
        // true exponent by raising x_min.
        let mut data = sample_power_law(2.2, 5.0, 10_000, 7);
        data.extend(std::iter::repeat_n(1.0, 2_000));
        let fit = PowerLawFit::fit(&data).unwrap();
        assert!(
            (fit.alpha - 2.2).abs() < 0.25,
            "fitted alpha {} too far from 2.2",
            fit.alpha
        );
        assert!(fit.x_min >= 1.0);
    }

    #[test]
    fn fit_requires_two_positive_values() {
        assert!(PowerLawFit::fit(&[]).is_none());
        assert!(PowerLawFit::fit(&[3.0]).is_none());
        assert!(PowerLawFit::fit(&[0.0, -1.0]).is_none());
        assert!(PowerLawFit::fit(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn constant_data_yields_infinite_alpha() {
        let fit = PowerLawFit::fit_with_xmin(&[2.0, 2.0, 2.0, 2.0], 2.0).unwrap();
        assert!(fit.alpha.is_infinite());
    }

    #[test]
    fn zipf_moments_match_direct_sums() {
        let (w1, w2) = zipf_moments(1.2, 1000);
        let d1: f64 = (1..=1000).map(|i| (i as f64).powf(-1.2)).sum();
        let d2: f64 = (1..=1000).map(|i| (i as f64).powf(-2.4)).sum();
        assert!((w1 - d1).abs() < 1e-9);
        assert!((w2 - d2).abs() < 1e-9);
    }

    #[test]
    fn zipf_moments_integral_tail_is_close() {
        // Compare the integral continuation against a direct (slow) sum.
        let n = 50_000;
        let alpha = 1.1;
        let (w1, _) = zipf_moments(alpha, n);
        let direct: f64 = (1..=n).map(|i| (i as f64).powf(-alpha)).sum();
        assert!(
            (w1 - direct).abs() / direct < 0.01,
            "integral approximation off by more than 1%: {w1} vs {direct}"
        );
    }

    #[test]
    fn zipf_moments_zero_n() {
        assert_eq!(zipf_moments(1.5, 0), (0.0, 0.0));
    }
}
