//! Round-trip suite for the single-file index arena (`crate::persist`):
//! save→load→save byte identity, storage and answer identity of loaded
//! indexes, zero-copy accounting (`mem_usage` reports every loaded arena as
//! borrowed), and growth after a load — inserting into a loaded index (which
//! promotes borrowed arenas to owned on first write) must leave it
//! bit-identical to the same inserts applied to the built index.

use gbkmv_core::dataset::{Dataset, Record};
use gbkmv_core::index::{FinishKernel, GbKmvConfig, GbKmvIndex, PostingFormat};
use gbkmv_core::service::ContainmentService;

fn dataset(n: usize) -> Dataset {
    Dataset::from_records((0..n as u32).map(|i| {
        (0..(3 + i % 23))
            .map(|j| (j * 29 + i * 11) % 1_500)
            .collect::<Vec<_>>()
    }))
}

fn configs() -> Vec<(&'static str, GbKmvConfig)> {
    vec![
        ("default", GbKmvConfig::with_space_fraction(0.4)),
        ("sharded", GbKmvConfig::with_space_fraction(0.4).shards(4)),
        (
            "raw-format",
            GbKmvConfig::with_space_fraction(0.4).posting_format(PostingFormat::Raw),
        ),
        (
            "raw-sharded",
            GbKmvConfig::with_space_fraction(0.4)
                .shards(3)
                .posting_format(PostingFormat::Raw),
        ),
        (
            "no-candidate-filter",
            GbKmvConfig::with_space_fraction(0.4).candidate_filter(false),
        ),
        (
            "no-buffer",
            GbKmvConfig::with_space_fraction(0.4).buffer_size(0),
        ),
        (
            "scalar-kernel",
            GbKmvConfig::with_space_fraction(0.4).finish_kernel(FinishKernel::Scalar),
        ),
        ("saturated", GbKmvConfig::with_space_fraction(2.0)),
    ]
}

#[test]
fn save_load_save_is_byte_identical_across_configs() {
    let data = dataset(150);
    for (label, config) in configs() {
        let built = GbKmvIndex::build(&data, config);
        let bytes = built.to_arena_bytes();
        let loaded = GbKmvIndex::from_arena_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{label}: load failed: {e}"));
        assert_eq!(
            loaded.to_arena_bytes(),
            bytes,
            "{label}: re-saved arena bytes diverged"
        );
    }
}

#[test]
fn loaded_index_matches_built_index_in_storage_and_answers() {
    let data = dataset(150);
    for (label, config) in configs() {
        let built = GbKmvIndex::build(&data, config);
        let loaded = GbKmvIndex::from_arena_bytes(&built.to_arena_bytes())
            .unwrap_or_else(|e| panic!("{label}: load failed: {e}"));
        assert_eq!(
            loaded.sharded(),
            built.sharded(),
            "{label}: loaded storage diverged"
        );
        assert_eq!(
            loaded.summary(),
            built.summary(),
            "{label}: summary diverged"
        );
        assert_eq!(loaded.config(), built.config(), "{label}: config diverged");
        for qid in [0usize, 7, 63, 149] {
            let query = data.record(qid);
            for t_star in [0.1, 0.5, 0.9] {
                assert_eq!(
                    loaded.search_record(query, t_star),
                    built.search_record(query, t_star),
                    "{label}: answers diverged (query {qid}, t*={t_star})"
                );
            }
        }
    }
}

#[test]
fn loaded_index_reports_every_arena_as_borrowed() {
    let data = dataset(200);
    for (label, config) in [
        ("packed", GbKmvConfig::with_space_fraction(0.4).shards(2)),
        (
            "raw",
            GbKmvConfig::with_space_fraction(0.4)
                .shards(2)
                .posting_format(PostingFormat::Raw),
        ),
    ] {
        let built = GbKmvIndex::build(&data, config);
        let loaded = GbKmvIndex::from_arena_bytes(&built.to_arena_bytes()).expect("load");
        let usage = loaded.mem_usage();
        // Every content-bearing component of the loaded index lives in the
        // leaked arena: the borrowed total is exactly the arena-content sum
        // (total minus the rebuilt hash_df map), and the owned total
        // excludes all of it.
        assert_eq!(
            usage.borrowed_bytes,
            usage.arena_content_bytes(),
            "{label}: a loaded component is not borrowed zero-copy"
        );
        assert!(usage.borrowed_bytes > 0, "{label}: nothing was borrowed");
        // The built index owns everything; nothing is borrowed there.
        let built_usage = built.mem_usage();
        assert_eq!(built_usage.borrowed_bytes, 0);
        assert!(built_usage.total_bytes() > 0);
    }
}

#[test]
fn insert_after_load_matches_insert_after_build() {
    let data = dataset(120);
    let extra: Vec<Record> = (0..9u32)
        .map(|i| Record::new((0..20).map(|j| (i * 37 + j * 13) % 1_500).collect()))
        .collect();
    for (label, config) in [
        ("packed", GbKmvConfig::with_space_fraction(0.4).shards(2)),
        (
            "raw",
            GbKmvConfig::with_space_fraction(0.4).posting_format(PostingFormat::Raw),
        ),
    ] {
        let mut built = GbKmvIndex::build(&data, config);
        let mut loaded = GbKmvIndex::from_arena_bytes(&built.to_arena_bytes()).expect("load");
        // Growing a loaded index promotes its borrowed arenas to owned
        // (one bulk copy each, on first write) and must land in exactly
        // the state the same inserts produce on the built index.
        for record in &extra {
            built.insert(record);
            loaded.insert(record);
        }
        assert_eq!(
            loaded.sharded(),
            built.sharded(),
            "{label}: grown loaded index diverged from grown built index"
        );
        let query = &extra[3];
        assert_eq!(
            loaded.search_record(query, 0.4),
            built.search_record(query, 0.4),
            "{label}: grown answers diverged"
        );
        // And the grown loaded index persists like any other.
        let regrown = GbKmvIndex::from_arena_bytes(&loaded.to_arena_bytes()).expect("re-load");
        assert_eq!(
            regrown.sharded(),
            loaded.sharded(),
            "{label}: regrown reload diverged"
        );
    }
}

#[test]
fn file_round_trip_through_service_checkpoint() {
    let dir = std::env::temp_dir().join("gbkmv_persist_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.arena");

    let data = dataset(100);
    let service = ContainmentService::build(&data, GbKmvConfig::with_space_fraction(0.4).shards(2));
    let report = service.checkpoint(&path, false).expect("checkpoint");
    assert_eq!(report.records, 100);
    assert_eq!(report.pending, 0);

    let reopened = ContainmentService::open(&path).expect("open");
    let before = service.snapshot();
    let after = reopened.snapshot();
    assert_eq!(after.sharded(), before.sharded());
    let query = data.record(42);
    assert_eq!(
        after.search_record(query, 0.3),
        before.search_record(query, 0.3)
    );
    std::fs::remove_file(&path).ok();
}
