//! Property tests of the block-compressed posting subsystem
//! (`gbkmv_core::index::postings`), pinning the packed representation to
//! the raw `Vec<u32>` oracle over adversarial slot distributions: dense
//! consecutive runs (width-0 blocks), single-element lists, maximal
//! `u32` gaps, and everything in between, across block boundaries.
//!
//! Three families of properties:
//!
//! * **round trip** — `encode → decode` is the identity for every
//!   ascending deduplicated slot sequence;
//! * **range walks** — `for_each_in_range` visits exactly the slots of
//!   `lo..hi`, in order, identically for both formats (the contract the
//!   candidates stage and the prune-stage truncation rely on);
//! * **mutations** — `insert_sorted` and `renumber_from` (the dynamic
//!   insert path) commute with encoding: mutating the packed list equals
//!   mutating the raw oracle and re-encoding.

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv_core::index::postings::{PostingList, BLOCK_LEN};
use gbkmv_core::index::PostingFormat;

/// Adversarial ascending slot sequences: a mix of dense runs (which
/// collapse to width-0 blocks), small gaps, medium gaps and huge jumps —
/// with lengths crossing several block boundaries and values reaching the
/// top of the `u32` range. Each raw code picks the gap class from its low
/// bits and the magnitude from the rest.
fn slots_strategy() -> impl Strategy<Value = Vec<u32>> {
    vec(any::<u32>(), 0..(3 * BLOCK_LEN + 17)).prop_map(|codes| {
        let mut slots = Vec::with_capacity(codes.len());
        let mut cur = (codes.first().copied().unwrap_or(0) % 1_000_000) as u64;
        for code in codes {
            slots.push(cur as u32);
            let magnitude = (code / 4) as u64;
            cur += match code % 4 {
                0 => 1,                                  // dense run
                1 => 1 + magnitude % 7,                  // small gaps
                2 => 1 + magnitude % 10_000,             // medium gaps
                _ => 1_000_000 + magnitude % 50_000_000, // huge jumps
            };
            if cur > u32::MAX as u64 {
                break;
            }
        }
        slots
    })
}

fn decode_range(list: &PostingList, lo: usize, hi: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    list.for_each_in_range(lo, hi, &mut buf, |slot| out.push(slot));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_round_trips_to_identity(slots in slots_strategy()) {
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        prop_assert_eq!(packed.to_vec(), slots.clone(), "encode→decode is not the identity");
        prop_assert_eq!(packed.len(), slots.len());
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        prop_assert_eq!(raw.to_vec(), slots, "the raw oracle must be transparent");
    }

    #[test]
    fn range_walks_agree_with_the_raw_oracle(
        slots in slots_strategy(),
        lo_pick in 0usize..1_000,
        span_pick in 0usize..1_000,
    ) {
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        let max = slots.last().copied().unwrap_or(0) as usize;
        // Ranges anchored around the actual slot values, plus degenerate
        // and unbounded ones.
        let lo = lo_pick * (max + 2) / 1_000;
        let hi = lo + span_pick * (max + 2 - lo.min(max + 1)) / 1_000;
        for (lo, hi) in [(lo, hi), (0, max + 1), (0, usize::MAX), (max, max), (lo, lo)] {
            let expected: Vec<u32> = slots
                .iter()
                .copied()
                .filter(|&s| (s as usize) >= lo && (s as usize) < hi)
                .collect();
            prop_assert_eq!(
                decode_range(&raw, lo, hi),
                expected.clone(),
                "raw walk broke on {}..{}", lo, hi
            );
            prop_assert_eq!(
                decode_range(&packed, lo, hi),
                expected,
                "packed walk broke on {}..{}", lo, hi
            );
        }
    }

    #[test]
    fn insert_and_renumber_commute_with_encoding(
        slots in slots_strategy(),
        splice_pick in 0usize..1_000,
    ) {
        // Model the exact mutation sequence of a dynamic index insert:
        // renumber everything at or above the splice slot, then splice the
        // (now free) slot in. The packed list must track the raw oracle.
        let max = slots.last().copied().unwrap_or(0);
        let slot = (splice_pick as u64 * (max as u64 + 2) / 1_000) as u32;
        let mut raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let mut packed = PostingList::from_sorted(PostingFormat::Packed, slots);
        raw.renumber_from(slot);
        packed.renumber_from(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "renumber_from({}) diverged", slot);
        raw.insert_sorted(slot);
        packed.insert_sorted(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "insert_sorted({}) diverged", slot);
        prop_assert_eq!(raw.len(), packed.len());
        // The grown packed list must also be *structurally* equal (derived
        // PartialEq, not just decoded contents) to a fresh encoding of the
        // grown raw list — incremental growth leaves no layout drift and
        // no stale inline metadata.
        let reencoded = PostingList::from_sorted(PostingFormat::Packed, raw.to_vec());
        prop_assert_eq!(&packed, &reencoded, "incremental growth drifted from a fresh encoding");
    }

    #[test]
    fn packed_never_outweighs_raw_beyond_per_block_slack(slots in slots_strategy()) {
        // Memory sanity: even on adversarial all-huge-gap lists (where the
        // deltas are as wide as the slots themselves and compression cannot
        // win), a packed list costs at most the raw bytes plus bounded
        // per-block slack — block metadata (12 B) and the tail padding of
        // the non-straddling word layout (≤ 8 B per block) — so the packed
        // default can never blow up memory on a pathological distribution.
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        let slack = 24 * slots.len().div_ceil(BLOCK_LEN) + 16;
        prop_assert!(
            packed.heap_bytes() <= raw.heap_bytes() + slack,
            "packed {} bytes vs raw {} (+{} slack) on {} slots",
            packed.heap_bytes(), raw.heap_bytes(), slack, slots.len()
        );
        if slots.len() <= 1 {
            prop_assert_eq!(packed.heap_bytes(), 0, "tiny lists must be inline");
        }
    }
}
