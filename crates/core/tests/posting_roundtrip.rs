//! Property tests of the block-compressed posting subsystem
//! (`gbkmv_core::index::postings`), pinning the packed representation to
//! the raw `Vec<u32>` oracle over adversarial slot distributions: dense
//! consecutive runs (width-0 blocks), single-element lists, maximal
//! `u32` gaps, and everything in between, across block boundaries.
//!
//! Three families of properties:
//!
//! * **round trip** — `encode → decode` is the identity for every
//!   ascending deduplicated slot sequence;
//! * **range walks** — `for_each_in_range` visits exactly the slots of
//!   `lo..hi`, in order, identically for both formats (the contract the
//!   candidates stage and the prune-stage truncation rely on);
//! * **mutations** — `insert_sorted` and `renumber_from` (the dynamic
//!   insert path) commute with encoding: mutating the packed list equals
//!   mutating the raw oracle and re-encoding.
//!
//! Every family runs over two slot distributions: the general adversarial
//! mix below, and a dense-but-gappy one engineered so the hybrid encoder's
//! per-block size rule actually chooses **bitmap** blocks (mostly gap-1
//! runs broken by occasional gaps of 2–4: enough entries per 128-slot
//! window that the 2-word presence mask beats the packed gap chain). The
//! chunked walk (`for_each_chunk_in_range`, the vectorized kernel's
//! substrate) is pinned to concatenate to the per-slot walk on both.

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv_core::index::postings::{PostingList, BLOCK_LEN};
use gbkmv_core::index::PostingFormat;

/// Adversarial ascending slot sequences: a mix of dense runs (which
/// collapse to width-0 blocks), small gaps, medium gaps and huge jumps —
/// with lengths crossing several block boundaries and values reaching the
/// top of the `u32` range. Each raw code picks the gap class from its low
/// bits and the magnitude from the rest.
fn slots_strategy() -> impl Strategy<Value = Vec<u32>> {
    vec(any::<u32>(), 0..(3 * BLOCK_LEN + 17)).prop_map(|codes| {
        let mut slots = Vec::with_capacity(codes.len());
        let mut cur = (codes.first().copied().unwrap_or(0) % 1_000_000) as u64;
        for code in codes {
            slots.push(cur as u32);
            let magnitude = (code / 4) as u64;
            cur += match code % 4 {
                0 => 1,                                  // dense run
                1 => 1 + magnitude % 7,                  // small gaps
                2 => 1 + magnitude % 10_000,             // medium gaps
                _ => 1_000_000 + magnitude % 50_000_000, // huge jumps
            };
            if cur > u32::MAX as u64 {
                break;
            }
        }
        slots
    })
}

/// Dense-but-gappy ascending sequences: mostly consecutive slots with
/// occasional gaps of 2–4, so many 128-slot windows hold ≥ 66 width-2
/// entries — exactly where the hybrid encoder's size rule flips a block
/// from gap-packed to a 128-bit presence mask.
fn dense_slots_strategy() -> impl Strategy<Value = Vec<u32>> {
    vec(any::<u32>(), 0..(6 * BLOCK_LEN + 13)).prop_map(|codes| {
        let mut slots = Vec::with_capacity(codes.len());
        let mut cur = (codes.first().copied().unwrap_or(0) % 1_000_000) as u64;
        for code in codes {
            slots.push(cur as u32);
            cur += match code % 8 {
                0..=5 => 1,              // dense run
                6 => 2,                  // small hole
                _ => 2 + (code / 8) % 3, // gap of 2..=4
            } as u64;
        }
        slots
    })
}

fn decode_range(list: &PostingList, lo: usize, hi: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    list.for_each_in_range(lo, hi, &mut buf, |slot| out.push(slot));
    out
}

fn decode_chunked_range(list: &PostingList, lo: usize, hi: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    list.for_each_chunk_in_range(lo, hi, &mut buf, |chunk| {
        chunk.for_each_slot(|slot| out.push(slot))
    });
    out
}

/// Exact byte cost of the pre-hybrid format: fixed 128-entry chunks, every
/// block gap-packed at its own width (⌊64/width⌋ lanes per word), 12-byte
/// metadata per block. The independent yardstick the hybrid memory bound
/// is measured against.
fn gap_only_bytes(slots: &[u32]) -> usize {
    let mut words = 0usize;
    let mut blocks = 0usize;
    for chunk in slots.chunks(BLOCK_LEN) {
        blocks += 1;
        let width = chunk
            .windows(2)
            .map(|w| 32 - (w[1] - w[0] - 1).leading_zeros())
            .max()
            .unwrap_or(0) as usize;
        if let Some(per_word) = 64usize.checked_div(width) {
            words += (chunk.len() - 1).div_ceil(per_word);
        }
    }
    8 * words + 12 * blocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_round_trips_to_identity(slots in slots_strategy()) {
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        prop_assert_eq!(packed.to_vec(), slots.clone(), "encode→decode is not the identity");
        prop_assert_eq!(packed.len(), slots.len());
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        prop_assert_eq!(raw.to_vec(), slots, "the raw oracle must be transparent");
    }

    #[test]
    fn range_walks_agree_with_the_raw_oracle(
        slots in slots_strategy(),
        lo_pick in 0usize..1_000,
        span_pick in 0usize..1_000,
    ) {
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        let max = slots.last().copied().unwrap_or(0) as usize;
        // Ranges anchored around the actual slot values, plus degenerate
        // and unbounded ones.
        let lo = lo_pick * (max + 2) / 1_000;
        let hi = lo + span_pick * (max + 2 - lo.min(max + 1)) / 1_000;
        for (lo, hi) in [(lo, hi), (0, max + 1), (0, usize::MAX), (max, max), (lo, lo)] {
            let expected: Vec<u32> = slots
                .iter()
                .copied()
                .filter(|&s| (s as usize) >= lo && (s as usize) < hi)
                .collect();
            prop_assert_eq!(
                decode_range(&raw, lo, hi),
                expected.clone(),
                "raw walk broke on {}..{}", lo, hi
            );
            prop_assert_eq!(
                decode_range(&packed, lo, hi),
                expected,
                "packed walk broke on {}..{}", lo, hi
            );
        }
    }

    #[test]
    fn insert_and_renumber_commute_with_encoding(
        slots in slots_strategy(),
        splice_pick in 0usize..1_000,
    ) {
        // Model the exact mutation sequence of a dynamic index insert:
        // renumber everything at or above the splice slot, then splice the
        // (now free) slot in. The packed list must track the raw oracle.
        let max = slots.last().copied().unwrap_or(0);
        let slot = (splice_pick as u64 * (max as u64 + 2) / 1_000) as u32;
        let mut raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let mut packed = PostingList::from_sorted(PostingFormat::Packed, slots);
        raw.renumber_from(slot);
        packed.renumber_from(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "renumber_from({}) diverged", slot);
        raw.insert_sorted(slot);
        packed.insert_sorted(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "insert_sorted({}) diverged", slot);
        prop_assert_eq!(raw.len(), packed.len());
        // The grown packed list must also be *structurally* equal (derived
        // PartialEq, not just decoded contents) to a fresh encoding of the
        // grown raw list — incremental growth leaves no layout drift and
        // no stale inline metadata.
        let reencoded = PostingList::from_sorted(PostingFormat::Packed, raw.to_vec());
        prop_assert_eq!(&packed, &reencoded, "incremental growth drifted from a fresh encoding");
    }

    #[test]
    fn packed_never_outweighs_raw_beyond_per_block_slack(slots in slots_strategy()) {
        // Memory sanity: even on adversarial all-huge-gap lists (where the
        // deltas are as wide as the slots themselves and compression cannot
        // win), a packed list costs at most the raw bytes plus bounded
        // per-block slack — block metadata (12 B) and the tail padding of
        // the non-straddling word layout (≤ 8 B per block) — so the packed
        // default can never blow up memory on a pathological distribution.
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        let slack = 24 * slots.len().div_ceil(BLOCK_LEN) + 16;
        prop_assert!(
            packed.heap_bytes() <= raw.heap_bytes() + slack,
            "packed {} bytes vs raw {} (+{} slack) on {} slots",
            packed.heap_bytes(), raw.heap_bytes(), slack, slots.len()
        );
        if slots.len() <= 1 {
            prop_assert_eq!(packed.heap_bytes(), 0, "tiny lists must be inline");
        }
    }

    #[test]
    fn hybrid_round_trips_and_walks_on_dense_shapes(
        slots in dense_slots_strategy(),
        lo_pick in 0usize..1_000,
        span_pick in 0usize..1_000,
    ) {
        // The dense strategy is where bitmap blocks actually appear; the
        // encode→decode identity and the range-walk agreement must hold
        // across mixed gap/bitmap block sequences exactly as on the
        // general mix.
        let raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        prop_assert_eq!(packed.to_vec(), slots.clone(), "hybrid encode→decode is not the identity");
        let max = slots.last().copied().unwrap_or(0) as usize;
        let lo = lo_pick * (max + 2) / 1_000;
        let hi = lo + span_pick * (max + 2 - lo.min(max + 1)) / 1_000;
        for (lo, hi) in [(lo, hi), (0, max + 1), (0, usize::MAX), (lo, lo)] {
            prop_assert_eq!(
                decode_range(&packed, lo, hi),
                decode_range(&raw, lo, hi),
                "hybrid walk diverged from the raw oracle on {}..{}", lo, hi
            );
        }
    }

    #[test]
    fn chunked_walk_concatenates_to_the_per_slot_walk(
        general in slots_strategy(),
        dense in dense_slots_strategy(),
        lo_pick in 0usize..1_000,
        span_pick in 0usize..1_000,
    ) {
        // The vectorized kernel consumes `for_each_chunk_in_range`; its
        // chunks must concatenate to exactly the per-slot walk's sequence
        // for both formats and every range — this is what makes the
        // kernels bit-identical end to end.
        for slots in [general, dense] {
            let max = slots.last().copied().unwrap_or(0) as usize;
            let lo = lo_pick * (max + 2) / 1_000;
            let hi = lo + span_pick * (max + 2 - lo.min(max + 1)) / 1_000;
            for format in [PostingFormat::Raw, PostingFormat::Packed] {
                let list = PostingList::from_sorted(format, slots.clone());
                for (lo, hi) in [(lo, hi), (0, max + 1), (0, usize::MAX), (lo, lo)] {
                    prop_assert_eq!(
                        decode_chunked_range(&list, lo, hi),
                        decode_range(&list, lo, hi),
                        "chunked walk diverged on {}..{} ({:?})", lo, hi, format
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_mutations_commute_with_encoding_on_dense_shapes(
        slots in dense_slots_strategy(),
        splice_pick in 0usize..1_000,
    ) {
        // The dynamic-insert mutation sequence over lists with bitmap
        // blocks: renumber + splice must track the raw oracle *and* leave
        // the packed list structurally identical to a fresh encoding — the
        // re-chunking after a mutation lands on the very same gap/bitmap
        // block decisions as a bulk build.
        let max = slots.last().copied().unwrap_or(0);
        let slot = (splice_pick as u64 * (max as u64 + 2) / 1_000) as u32;
        let mut raw = PostingList::from_sorted(PostingFormat::Raw, slots.clone());
        let mut packed = PostingList::from_sorted(PostingFormat::Packed, slots);
        raw.renumber_from(slot);
        packed.renumber_from(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "renumber_from({}) diverged", slot);
        let renumbered = PostingList::from_sorted(PostingFormat::Packed, raw.to_vec());
        prop_assert_eq!(&packed, &renumbered, "renumber drifted from a fresh encoding");
        raw.insert_sorted(slot);
        packed.insert_sorted(slot);
        prop_assert_eq!(raw.to_vec(), packed.to_vec(), "insert_sorted({}) diverged", slot);
        let reencoded = PostingList::from_sorted(PostingFormat::Packed, raw.to_vec());
        prop_assert_eq!(&packed, &reencoded, "incremental growth drifted from a fresh encoding");
    }

    #[test]
    fn hybrid_never_outweighs_the_gap_only_encoding(slots in dense_slots_strategy()) {
        // The hybrid memory bound: a bitmap block is chosen *only* when the
        // same entries gap-encoded would cost more than the 2-word mask, so
        // the hybrid list must not exceed the pre-hybrid fixed-chunk
        // gap-only encoding beyond bounded per-block slack (block metadata
        // for the extra blocks adaptive chunking can produce — a bitmap
        // block consumes its 128-slot window rather than 128 entries — and
        // one word of boundary drift per block), plus the one 16-byte mask
        // of a trailing partial block.
        let packed = PostingList::from_sorted(PostingFormat::Packed, slots.clone());
        let budget = gap_only_bytes(&slots) + 40 * slots.len().div_ceil(BLOCK_LEN) + 32;
        prop_assert!(
            packed.heap_bytes() <= budget,
            "hybrid {} bytes vs gap-only budget {} on {} slots",
            packed.heap_bytes(), budget, slots.len()
        );
    }
}
