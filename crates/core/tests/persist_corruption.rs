//! Corruption robustness of the single-file index arena: truncated files,
//! wrong magic, wrong version, flipped bits, and structurally inconsistent
//! (but checksum-valid) images must all surface as typed
//! [`GbKmvError`](gbkmv_core::GbKmvError) variants — **never** a panic,
//! never undefined behaviour. The sweep tests re-stamp the per-section and
//! header checksums after each mutation (via
//! [`gbkmv_core::persist::rewrite_checksum`]) so the structural validators
//! — not just the checksums — are what's exercised.

use gbkmv_core::dataset::Dataset;
use gbkmv_core::index::{GbKmvConfig, GbKmvIndex, PostingFormat};
use gbkmv_core::persist::{rewrite_checksum, ARENA_MAGIC, ARENA_VERSION};
use gbkmv_core::Error;

fn records(n: u32) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| (0..(4 + i % 19)).map(|j| (j * 17 + i * 13) % 900).collect())
        .collect()
}

fn arena(config: GbKmvConfig) -> Vec<u8> {
    let dataset = Dataset::from_records(records(80));
    GbKmvIndex::build(&dataset, config).to_arena_bytes()
}

/// An image produced by the *delta* writer (clean shards copied from a
/// previous image, dirty ones re-serialized) rather than the full one.
fn delta_arena(config: GbKmvConfig) -> Vec<u8> {
    let all = records(80);
    let mut index = GbKmvIndex::build(&Dataset::from_records(all[..70].to_vec()), config);
    let prev = index.to_arena_bytes();
    let tail = Dataset::from_records(all[70..].to_vec());
    for r in tail.records() {
        index.insert(r);
    }
    let (bytes, stats) = index.to_arena_bytes_delta(&prev);
    assert!(
        stats.reused_shards > 0 && !stats.fallback,
        "the delta test arena must actually reuse sections"
    );
    bytes
}

#[test]
fn every_truncation_length_is_a_typed_error() {
    let bytes = arena(GbKmvConfig::with_space_fraction(0.4));
    // Every prefix length across the header and into the body (sampled past
    // the first kilobyte — the interesting cliffs are all early).
    let lengths: Vec<usize> = (0..bytes.len())
        .filter(|&l| l < 1_024 || l % 257 == 0)
        .collect();
    for len in lengths {
        match GbKmvIndex::from_arena_bytes(&bytes[..len]) {
            Err(Error::PersistTruncated { .. }) => {}
            Err(other) => panic!("prefix of {len} bytes: expected PersistTruncated, got {other}"),
            Ok(_) => panic!("prefix of {len} bytes loaded successfully"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_typed_errors() {
    let bytes = arena(GbKmvConfig::with_space_fraction(0.4));

    let mut not_an_arena = bytes.clone();
    not_an_arena[..8].copy_from_slice(b"NOTGBKMV");
    match GbKmvIndex::from_arena_bytes(&not_an_arena) {
        Err(Error::PersistMagic { found }) => {
            assert_ne!(found, ARENA_MAGIC);
        }
        other => panic!("expected PersistMagic, got {other:?}"),
    }

    let mut future_version = bytes;
    future_version[8..16].copy_from_slice(&(ARENA_VERSION + 7).to_le_bytes());
    match GbKmvIndex::from_arena_bytes(&future_version) {
        Err(Error::PersistVersion { found, supported }) => {
            assert_eq!(found, ARENA_VERSION + 7);
            assert_eq!(supported, ARENA_VERSION);
        }
        other => panic!("expected PersistVersion, got {other:?}"),
    }
}

#[test]
fn single_bit_flips_never_panic_and_never_load() {
    // Flip one bit at a sampled set of positions across the whole image.
    // Section flips must be caught by that section's checksum, table flips
    // by the header checksum, header flips by the header checks. Either
    // way: a typed error, never a panic, never Ok with silently different
    // bytes.
    for config in [
        GbKmvConfig::with_space_fraction(0.4),
        GbKmvConfig::with_space_fraction(0.4)
            .shards(3)
            .posting_format(PostingFormat::Raw),
    ] {
        let bytes = arena(config);
        let positions: Vec<usize> = (0..bytes.len()).step_by(97).collect();
        for pos in positions {
            for bit in [0u8, 5] {
                let mut corrupted = bytes.clone();
                corrupted[pos] ^= 1 << bit;
                match GbKmvIndex::from_arena_bytes(&corrupted) {
                    Err(_) => {}
                    Ok(_) => panic!("bit {bit} of byte {pos} flipped and the arena still loaded"),
                }
            }
        }
    }
}

#[test]
fn checksum_valid_structural_corruption_is_still_rejected() {
    // Mutate body bytes and re-stamp the checksum, so only the structural
    // validators stand between the corrupt image and undefined behaviour.
    // Sampled across the whole body: meta-stream counts, section contents,
    // posting descriptors, permutation entries — everything gets hit.
    let bytes = arena(GbKmvConfig::with_space_fraction(0.4).shards(2));
    let positions: Vec<usize> = (48..bytes.len()).step_by(61).collect();
    let mut rejected = 0usize;
    for pos in positions {
        let mut corrupted = bytes.clone();
        corrupted[pos] = corrupted[pos].wrapping_add(1);
        rewrite_checksum(&mut corrupted);
        match GbKmvIndex::from_arena_bytes(&corrupted) {
            Err(_) => rejected += 1,
            Ok(loaded) => {
                // A mutation the validators accept hit pure *content* (a
                // hash value, a bitmap word, a summary float): wrong data,
                // but structurally sound — the index must still serialize
                // and answer queries without panicking.
                let _ = loaded.to_arena_bytes();
                let _ = loaded.search_elements(&[1, 2, 3, 50, 700], 0.3);
            }
        }
    }
    assert!(
        rejected > 0,
        "no checksum-valid mutation tripped the structural validators"
    );
}

#[test]
fn misaligned_section_offsets_are_typed_errors() {
    let bytes = arena(GbKmvConfig::with_space_fraction(0.4));
    // Knock each of the first few section offsets off 8-byte alignment and
    // re-stamp the checksum: the alignment guard (which protects the
    // zero-copy casts) must fire, not a crash inside them.
    for section in 0..4usize {
        let t = 48 + section * 24;
        let mut corrupted = bytes.clone();
        let off = u64::from_le_bytes(corrupted[t..t + 8].try_into().unwrap());
        corrupted[t..t + 8].copy_from_slice(&(off + 2).to_le_bytes());
        rewrite_checksum(&mut corrupted);
        match GbKmvIndex::from_arena_bytes(&corrupted) {
            Err(Error::PersistMisaligned { section: s, offset }) => {
                assert_eq!(s, section);
                assert_eq!(offset, off + 2);
            }
            other => panic!("section {section}: expected PersistMisaligned, got {other:?}"),
        }
    }
}

#[test]
fn delta_produced_images_reject_corruption_like_full_ones() {
    // Reused sections carry checksums stamped by an *earlier* save; the
    // corruption guarantees must hold on such images all the same.
    let bytes = delta_arena(GbKmvConfig::with_space_fraction(0.4).shards(3));
    for pos in (0..bytes.len()).step_by(131) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 1 << 3;
        assert!(
            GbKmvIndex::from_arena_bytes(&corrupted).is_err(),
            "bit 3 of byte {pos} flipped and the delta-produced arena still loaded"
        );
    }
    for pos in (48..bytes.len()).step_by(89) {
        let mut corrupted = bytes.clone();
        corrupted[pos] = corrupted[pos].wrapping_add(1);
        rewrite_checksum(&mut corrupted);
        match GbKmvIndex::from_arena_bytes(&corrupted) {
            Err(_) => {}
            Ok(loaded) => {
                // Content-only mutation: must stay structurally usable.
                let _ = loaded.to_arena_bytes();
                let _ = loaded.search_elements(&[1, 2, 3, 50, 700], 0.3);
            }
        }
    }

    // Truncations of a delta-produced image are typed, like full ones.
    for len in [0, 16, 47, 48, bytes.len() - 8] {
        match GbKmvIndex::from_arena_bytes(&bytes[..len]) {
            Err(_) => {}
            Ok(_) => panic!("prefix of {len} bytes of a delta-produced arena loaded"),
        }
    }
}

#[test]
fn oversized_counts_do_not_allocate_or_panic() {
    // A crafted section count of u64::MAX (checksum re-stamped) must be
    // rejected by checked arithmetic — not overflow a multiplication or
    // attempt a huge allocation.
    let bytes = arena(GbKmvConfig::with_space_fraction(0.4));
    let mut corrupted = bytes.clone();
    corrupted[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
    rewrite_checksum(&mut corrupted);
    match GbKmvIndex::from_arena_bytes(&corrupted) {
        Err(Error::PersistCorrupt { .. }) => {}
        other => panic!("expected PersistCorrupt, got {other:?}"),
    }

    // Same for a section whose extent wraps the address space.
    let mut wrapping = bytes;
    wrapping[48..56].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
    rewrite_checksum(&mut wrapping);
    match GbKmvIndex::from_arena_bytes(&wrapping) {
        Err(
            Error::PersistCorrupt { .. }
            | Error::PersistMisaligned { .. }
            | Error::PersistTruncated { .. },
        ) => {}
        other => panic!("expected a typed persist error, got {other:?}"),
    }
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    for input in [&[][..], &[0u8; 8][..], &[0u8; 47][..]] {
        match GbKmvIndex::from_arena_bytes(input) {
            Err(Error::PersistTruncated { .. }) => {}
            other => panic!(
                "{}-byte input: expected PersistTruncated, got {other:?}",
                input.len()
            ),
        }
    }
    // 48 zero bytes: long enough for a header, but the magic is wrong.
    match GbKmvIndex::from_arena_bytes(&[0u8; 48]) {
        Err(Error::PersistMagic { found: 0 }) => {}
        other => panic!("expected PersistMagic, got {other:?}"),
    }
}
