//! Focused unit tests for the paper's core estimators on small *fixed*
//! datasets (no randomness): GB-KMV containment estimates versus exact
//! containment, plus the buffer / partition edge cases (empty record,
//! singleton, all-duplicates).

use gbkmv_core::buffer::BufferLayout;
use gbkmv_core::dataset::{Dataset, Record};
use gbkmv_core::gbkmv::GbKmvSketcher;
use gbkmv_core::gkmv::{GKmvSketch, GlobalThreshold};
use gbkmv_core::hash::Hasher64;
use gbkmv_core::index::{ContainmentIndex, GbKmvConfig, GbKmvIndex};
use gbkmv_core::kmv::KmvSketch;
use gbkmv_core::partition::SizePartitions;
use gbkmv_core::sim::containment;
use gbkmv_core::stats::DatasetStats;

/// Example 1 of the paper: four small records over a tiny universe.
fn example1_dataset() -> Dataset {
    Dataset::from_records(vec![
        vec![1, 2, 3, 4, 7],
        vec![2, 3, 5],
        vec![2, 4, 5],
        vec![1, 2, 6, 10],
    ])
}

#[test]
fn saturated_sketcher_estimates_equal_exact_containment() {
    // With τ = keep-all and no buffer, the G-KMV part stores every hash, so
    // the GB-KMV estimate degenerates to the exact containment (the
    // degenerate case of Theorem 2 / Equation 27).
    let dataset = example1_dataset();
    let sketcher = GbKmvSketcher::new(
        Hasher64::new(42),
        BufferLayout::empty(),
        GlobalThreshold::keep_all(),
    );
    let sketches = sketcher.sketch_dataset(&dataset);
    for (qid, q) in dataset.iter() {
        for (rid, x) in dataset.iter() {
            let est = sketcher.estimate_containment(&sketches[qid], &sketches[rid], q.len());
            let exact = containment(q, x);
            assert!(
                (est - exact).abs() < 1e-9,
                "pair ({qid}, {rid}): estimate {est} != exact {exact}"
            );
        }
    }
}

#[test]
fn saturated_sketcher_with_buffer_is_still_exact() {
    // Splitting coverage between the buffer (frequent elements, exact) and a
    // saturated G-KMV sketch (everything else) must not change the estimate:
    // the two parts are disjoint by construction.
    let dataset = example1_dataset();
    let stats = DatasetStats::compute(&dataset);
    let budget = dataset.total_elements() * 2;
    for buffer_size in [1usize, 2, 4, 8] {
        let sketcher =
            GbKmvSketcher::build(&dataset, &stats, Hasher64::new(7), buffer_size, budget);
        let sketches = sketcher.sketch_dataset(&dataset);
        for (qid, q) in dataset.iter() {
            for (rid, x) in dataset.iter() {
                let est = sketcher.estimate_containment(&sketches[qid], &sketches[rid], q.len());
                let exact = containment(q, x);
                assert!(
                    (est - exact).abs() < 1e-9,
                    "r={buffer_size}, pair ({qid}, {rid}): estimate {est} != exact {exact}"
                );
            }
        }
    }
}

#[test]
fn full_budget_index_search_equals_exact_search_on_example1() {
    let dataset = example1_dataset();
    let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
    // Q = {1, 2, 3, 5, 7, 9} from the paper's running example: C(Q, X1) =
    // 4/6, C(Q, X2) = 3/6, C(Q, X3) = 2/6, C(Q, X4) = 2/6.
    let query = vec![1u32, 2, 3, 5, 7, 9];
    let hits = index.search(&query, 0.5);
    let mut ids: Vec<usize> = hits.iter().map(|h| h.record_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1], "t* = 0.5 must return exactly X1 and X2");
}

#[test]
fn empty_record_sketches_are_empty_and_estimate_zero() {
    let empty = Record::new(Vec::new());
    let hasher = Hasher64::new(3);

    let kmv = KmvSketch::from_record(&empty, &hasher, 16);
    assert!(kmv.is_empty() && kmv.is_exhaustive());
    assert_eq!(kmv.distinct_estimate(), 0.0);

    let gkmv = GKmvSketch::from_record(&empty, &hasher, GlobalThreshold::keep_all());
    assert_eq!(gkmv.len(), 0);

    let sketcher = GbKmvSketcher::new(
        hasher,
        BufferLayout::new(vec![1, 2, 3]),
        GlobalThreshold::keep_all(),
    );
    let se = sketcher.sketch_record(&empty);
    let other = sketcher.sketch_record(&Record::new(vec![1, 2, 3, 4]));
    // An empty query has containment 0 by convention (division guard).
    assert_eq!(sketcher.estimate_containment(&se, &other, 0), 0.0);
    // An empty record also intersects nothing.
    assert_eq!(
        sketcher.estimate_pair(&se, &other).intersection_estimate,
        0.0
    );
}

#[test]
fn singleton_record_estimates_are_exact() {
    let singleton = Record::new(vec![99]);
    let hasher = Hasher64::new(5);

    let kmv = KmvSketch::from_record(&singleton, &hasher, 16);
    assert!(kmv.is_exhaustive());
    assert_eq!(kmv.distinct_estimate(), 1.0);

    let sketcher = GbKmvSketcher::new(hasher, BufferLayout::empty(), GlobalThreshold::keep_all());
    let ss = sketcher.sketch_record(&singleton);
    // Containment of the singleton in itself is exactly 1.
    assert!((sketcher.estimate_containment(&ss, &ss, singleton.len()) - 1.0).abs() < 1e-12);
    // And in a record that contains it.
    let superset = sketcher.sketch_record(&Record::new(vec![7, 99, 200]));
    assert!((sketcher.estimate_containment(&ss, &superset, 1) - 1.0).abs() < 1e-12);
    // And 0 in a disjoint record.
    let disjoint = sketcher.sketch_record(&Record::new(vec![7, 200]));
    assert_eq!(sketcher.estimate_containment(&ss, &disjoint, 1), 0.0);
}

#[test]
fn all_duplicates_record_collapses_to_one_element() {
    // Records are sets: duplicate elements must not inflate any estimate.
    let dupes = Record::new(vec![5, 5, 5, 5, 5]);
    assert_eq!(dupes.len(), 1, "Record::new must deduplicate");

    let hasher = Hasher64::new(9);
    let kmv = KmvSketch::from_record(&dupes, &hasher, 8);
    assert_eq!(kmv.len(), 1);
    assert_eq!(kmv.distinct_estimate(), 1.0);

    let layout = BufferLayout::new(vec![5]);
    let buffer = layout.build_buffer(&dupes);
    assert_eq!(buffer.count_ones(), 1);
    assert_eq!(buffer.intersection_count(&layout.build_buffer(&dupes)), 1);
}

#[test]
fn buffer_layout_edge_cases() {
    // Empty layout: no bits, zero cost, no intersections.
    let empty_layout = BufferLayout::empty();
    assert!(empty_layout.is_empty());
    assert_eq!(empty_layout.cost_per_record(), 0.0);
    let a = empty_layout.build_buffer(&Record::new(vec![1, 2, 3]));
    let b = empty_layout.build_buffer(&Record::new(vec![2, 3, 4]));
    assert_eq!(a.intersection_count(&b), 0);

    // A layout never records elements outside itself.
    let layout = BufferLayout::new(vec![10, 20, 30]);
    let c = layout.build_buffer(&Record::new(vec![10, 99, 30]));
    assert_eq!(c.count_ones(), 2);
    assert!(!layout.contains(99));

    // Buffer of an empty record intersects nothing.
    let e = layout.build_buffer(&Record::new(Vec::new()));
    assert_eq!(e.count_ones(), 0);
    assert_eq!(e.intersection_count(&c), 0);
}

#[test]
fn partition_edge_cases() {
    // Empty dataset: no partitions, nothing covered.
    let empty = Dataset::default();
    let parts = SizePartitions::equal_depth(&empty, 4);
    assert!(parts.is_empty());

    // Single record: exactly one non-empty partition containing record 0.
    let single = Dataset::from_records(vec![vec![1u32, 2, 3]]);
    let parts = SizePartitions::equal_depth(&single, 4);
    let covered: Vec<usize> = parts
        .partitions()
        .iter()
        .flat_map(|p| p.records.clone())
        .collect();
    assert_eq!(covered, vec![0]);

    // More partitions than records still covers every record exactly once.
    let tiny = example1_dataset();
    let parts = SizePartitions::equal_depth(&tiny, 16);
    let mut covered: Vec<usize> = parts
        .partitions()
        .iter()
        .flat_map(|p| p.records.clone())
        .collect();
    covered.sort_unstable();
    assert_eq!(covered, vec![0, 1, 2, 3]);
}

#[test]
fn index_handles_degenerate_records() {
    // A dataset mixing an all-duplicates record, a singleton and normal
    // records builds and answers self-queries at full budget.
    let dataset = Dataset::from_records(vec![
        vec![5u32, 5, 5, 5],
        vec![42],
        vec![1, 2, 3, 4, 5, 6, 7, 8],
        vec![2, 4, 6, 8, 10, 12],
    ]);
    let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
    for (rid, record) in dataset.iter() {
        let hits = index.search(record.elements(), 0.9);
        assert!(
            hits.iter().any(|h| h.record_id == rid),
            "record {rid} should match itself at full budget"
        );
    }
}
