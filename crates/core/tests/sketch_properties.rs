//! Property-based tests for the core sketch invariants, run against the
//! public API of `gbkmv-core` only (no other crates involved).

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv_core::buffer::BufferLayout;
use gbkmv_core::dataset::{Dataset, Record};
use gbkmv_core::gkmv::{GKmvSketch, GlobalThreshold};
use gbkmv_core::hash::{unit_hash, Hasher64};
use gbkmv_core::kmv::KmvSketch;
use gbkmv_core::partition::SizePartitions;
use gbkmv_core::stats::DatasetStats;

fn record_strategy(universe: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    vec(0..universe, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmv_sketch_is_sorted_and_bounded(elements in record_strategy(5_000, 200), k in 1usize..64) {
        let sketch = KmvSketch::from_record(&Record::new(elements), &Hasher64::new(5), k);
        prop_assert!(sketch.len() <= k);
        prop_assert!(sketch.hashes().windows(2).all(|w| w[0] < w[1]));
        if let Some(u) = sketch.kth_unit() {
            prop_assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn kmv_pair_estimate_is_symmetric(a in record_strategy(2_000, 150), b in record_strategy(2_000, 150)) {
        let hasher = Hasher64::new(6);
        let sa = KmvSketch::from_record(&Record::new(a), &hasher, 32);
        let sb = KmvSketch::from_record(&Record::new(b), &hasher, 32);
        let ab = sa.pair_estimate(&sb);
        let ba = sb.pair_estimate(&sa);
        prop_assert_eq!(ab.k, ba.k);
        prop_assert_eq!(ab.k_intersection, ba.k_intersection);
        prop_assert!((ab.intersection_estimate - ba.intersection_estimate).abs() < 1e-9);
    }

    #[test]
    fn kmv_intersection_never_exceeds_union_estimate(a in record_strategy(2_000, 150), b in record_strategy(2_000, 150)) {
        let hasher = Hasher64::new(7);
        let sa = KmvSketch::from_record(&Record::new(a), &hasher, 48);
        let sb = KmvSketch::from_record(&Record::new(b), &hasher, 48);
        let pair = sa.pair_estimate(&sb);
        prop_assert!(pair.intersection_estimate <= pair.union_estimate + 1e-9);
        prop_assert!(pair.intersection_estimate >= 0.0);
    }

    #[test]
    fn gkmv_sketch_contains_only_admitted_hashes(elements in record_strategy(5_000, 200), raw in 0u64..u64::MAX) {
        let hasher = Hasher64::new(8);
        let threshold = GlobalThreshold { raw };
        let record = Record::new(elements);
        let sketch = GKmvSketch::from_record(&record, &hasher, threshold);
        for &h in sketch.hashes() {
            prop_assert!(threshold.admits(h));
        }
        // Every admitted element hash must be present.
        let expected = record.iter().filter(|&e| threshold.admits(hasher.hash(e))).count();
        prop_assert_eq!(sketch.len(), expected);
    }

    #[test]
    fn global_threshold_budget_is_respected(records in vec(record_strategy(800, 60), 2..30), budget in 1usize..500) {
        let dataset = Dataset::from_records(records);
        let hasher = Hasher64::new(9);
        let threshold = GlobalThreshold::from_budget(&dataset, &hasher, budget);
        let stored: usize = dataset
            .records()
            .iter()
            .map(|r| r.iter().filter(|&e| threshold.admits(hasher.hash(e))).count())
            .sum();
        prop_assert!(stored <= budget || threshold.raw == u64::MAX,
            "stored {} exceeds budget {} with non-saturated threshold", stored, budget);
        if threshold.raw == u64::MAX {
            // Saturation only happens when the budget covers everything.
            prop_assert!(budget >= dataset.total_elements());
        }
    }

    #[test]
    fn buffer_intersection_counts_common_buffered_elements(
        buffered in vec(0u32..200, 1..64),
        a in record_strategy(200, 80),
        b in record_strategy(200, 80),
    ) {
        let mut buffered = buffered;
        buffered.sort_unstable();
        buffered.dedup();
        let layout = BufferLayout::new(buffered.clone());
        let ra = Record::new(a);
        let rb = Record::new(b);
        let ba = layout.build_buffer(&ra);
        let bb = layout.build_buffer(&rb);
        let expected = buffered
            .iter()
            .filter(|&&e| ra.contains(e) && rb.contains(e))
            .count();
        prop_assert_eq!(ba.intersection_count(&bb), expected);
    }

    #[test]
    fn unit_hash_is_order_preserving(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(a.cmp(&b), unit_hash(a).partial_cmp(&unit_hash(b)).unwrap());
    }

    #[test]
    fn stats_moments_are_consistent(records in vec(record_strategy(500, 60), 1..40)) {
        let dataset = Dataset::from_records(records);
        let stats = DatasetStats::compute(&dataset);
        prop_assert_eq!(stats.total_elements, dataset.total_elements());
        // fr and fr2 are monotone in r and reach fn2 / 1.0 at the vocabulary size.
        let n = stats.num_distinct_elements;
        prop_assert!((stats.fr(n) - 1.0).abs() < 1e-9 || stats.total_elements == 0);
        prop_assert!((stats.fr2(n) - stats.fn2()).abs() < 1e-12);
        let mut prev = 0.0;
        for r in 0..=n.min(50) {
            let f = stats.fr(r);
            prop_assert!(f + 1e-12 >= prev);
            prev = f;
        }
    }

    #[test]
    fn equal_depth_partitions_cover_all_records(records in vec(record_strategy(500, 60), 1..60), parts in 1usize..10) {
        let dataset = Dataset::from_records(records);
        let partitions = SizePartitions::equal_depth(&dataset, parts);
        let mut covered: Vec<usize> = partitions
            .partitions()
            .iter()
            .flat_map(|p| p.records.clone())
            .collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..dataset.len()).collect::<Vec<_>>());
        for p in partitions.partitions() {
            for &id in &p.records {
                let len = dataset.record(id).len();
                prop_assert!(len >= p.min_size && len <= p.max_size);
            }
        }
    }
}
