//! Property tests pinning the accumulator query engine to the reference
//! paths: across random datasets, space budgets, buffer sizes and thresholds,
//! `search_filtered` (term-at-a-time accumulator over the CSR store) and
//! `search_filtered_baseline` (hash-set candidates + sorted merges) must
//! return **bit-identical** hits — same record ids, same `f64` estimates — as
//! the full-scan reference `search_scan`, and the bounded-heap top-k must
//! match a sort-everything reference.

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv_core::dataset::Dataset;
use gbkmv_core::index::{BufferSizing, GbKmvConfig, GbKmvIndex, SearchHit};
use gbkmv_core::store::QueryScratch;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    vec(vec(0u32..3_000, 1..120), 4..48).prop_map(Dataset::from_records)
}

/// Maps a raw generated buffer knob onto the three sizing modes.
fn buffer_sizing(knob: usize) -> BufferSizing {
    match knob {
        0 => BufferSizing::Fixed(0), // plain G-KMV
        k if k < 20 => BufferSizing::Fixed(k),
        _ => BufferSizing::Auto,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filtered_and_baseline_are_bit_identical_to_scan(
        dataset in dataset_strategy(),
        budget_fraction in 0.03f64..1.2,
        t_star in 0.0f64..1.0,
        buffer_knob in 0usize..24,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        let mut config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1);
        config.buffer = buffer_sizing(buffer_knob);
        let index = GbKmvIndex::build(&dataset, config);
        let query = dataset.record(query_pick % dataset.len()).clone();

        let scan = index.search_scan(&query, t_star);
        let filtered = index.search_filtered(&query, t_star);
        let baseline = index.search_filtered_baseline(&query, t_star);

        // Bit-identical: SearchHit's PartialEq compares the f64 estimates
        // exactly, not approximately.
        prop_assert_eq!(&scan, &filtered,
            "accumulator diverged from scan (t*={}, budget={})", t_star, budget_fraction);
        prop_assert_eq!(&scan, &baseline,
            "baseline diverged from scan (t*={}, budget={})", t_star, budget_fraction);

        // The ContainmentIndex ordering contract: ascending record id.
        prop_assert!(scan.windows(2).all(|w| w[0].record_id < w[1].record_id));

        // Reusing one scratch for a second pass over the same query changes
        // nothing (epoch reset works under arbitrary configurations).
        let mut scratch = QueryScratch::new();
        let first = index.search_filtered_with(&query, t_star, &mut scratch);
        let second = index.search_filtered_with(&query, t_star, &mut scratch);
        prop_assert_eq!(&first, &second, "scratch reuse leaked state");
        prop_assert_eq!(&first, &scan, "explicit-scratch path diverged from scan");
    }

    #[test]
    fn filtered_topk_matches_positive_score_reference(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.0,
        k in 1usize..20,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        // Candidate-filtered top-k ranks exactly the records sharing a
        // posting with the query, which are exactly the records with a
        // strictly positive estimate. The reference is therefore the
        // sort-everything ranking of `search_scan` restricted to
        // positive-score hits.
        let config = GbKmvConfig::with_space_fraction(budget_fraction).hash_seed(seed | 1);
        let index = GbKmvIndex::build(&dataset, config);
        let query = dataset.record(query_pick % dataset.len()).clone();

        let top = index.search_topk(&query, k);

        let mut reference: Vec<SearchHit> = index.search_scan(&query, 0.0);
        reference.sort_by(|a, b| {
            b.estimated_containment
                .total_cmp(&a.estimated_containment)
                .then_with(|| a.record_id.cmp(&b.record_id))
        });
        reference.retain(|h| h.estimated_overlap > 0.0);
        reference.truncate(k);
        prop_assert_eq!(top, reference, "filtered heap top-k diverged from reference");
    }

    #[test]
    fn heap_topk_matches_sort_everything_reference(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.0,
        k in 1usize..20,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        // Scan mode ranks *every* record, so the reference is unambiguous.
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .candidate_filter(false);
        let index = GbKmvIndex::build(&dataset, config);
        let qid = query_pick % dataset.len();
        let query = dataset.record(qid).clone();

        let top = index.search_topk(&query, k);

        // Reference: estimate every record (threshold 0 returns all), sort by
        // (containment desc, record id asc), truncate.
        let mut reference: Vec<SearchHit> = index.search_scan(&query, 0.0);
        reference.sort_by(|a, b| {
            b.estimated_containment
                .total_cmp(&a.estimated_containment)
                .then_with(|| a.record_id.cmp(&b.record_id))
        });
        reference.truncate(k);
        prop_assert_eq!(top, reference, "heap top-k diverged from sort reference");
    }
}
