//! Property tests pinning the staged query pipeline to the reference paths:
//! across random datasets, space budgets, buffer sizes, shard counts,
//! posting-list storage formats (block-compressed packed vs raw) and
//! thresholds, the pruned pipeline (`search_filtered`, with its signature
//! prefix filter on by default), the pruning- and prefix-disabled
//! ablations, the sharded index, the parallel batch path, the intra-query
//! parallel path (`search_parallel`), the auto-scheduled path
//! (`search_auto`) and `search_filtered_baseline` (hash-set candidates +
//! sorted merges) must all return **bit-identical** hits — same record
//! ids, same `f64` estimates, same order — as the full-scan reference
//! `search_scan`; and the bounded-heap top-k must match a sort-everything
//! reference. Saturated sketches (budgets above 100%), empty queries,
//! (near-)zero thresholds (where no prefix exists and every hash mints)
//! and queries whose signature is entirely absent from the index are
//! exercised explicitly. The posting format is crossed with prefix,
//! sharding and insert-then-search, so compression can never change an
//! answer; the candidates-stage finish kernel (scalar oracle vs the
//! default vectorized block-at-a-time accumulate) is crossed with format,
//! prefix, sharding, the parallel paths, top-k and the serving layer, so
//! the batched kernel can never change one either.

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv_core::dataset::{Dataset, Record};
use gbkmv_core::index::{
    BufferSizing, FinishKernel, GbKmvConfig, GbKmvIndex, PostingFormat, QueryPipeline, SearchHit,
};
use gbkmv_core::service::ContainmentService;
use gbkmv_core::store::QueryScratch;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    vec(vec(0u32..3_000, 1..120), 4..48).prop_map(Dataset::from_records)
}

/// Maps a raw generated buffer knob onto the three sizing modes.
fn buffer_sizing(knob: usize) -> BufferSizing {
    match knob {
        0 => BufferSizing::Fixed(0), // plain G-KMV
        k if k < 20 => BufferSizing::Fixed(k),
        _ => BufferSizing::Auto,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engine_paths_are_bit_identical_to_scan(
        dataset in dataset_strategy(),
        budget_fraction in 0.03f64..1.2,
        t_star in 0.0f64..1.0,
        buffer_knob in 0usize..24,
        shards in 1usize..5,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        let mut config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1);
        config.buffer = buffer_sizing(buffer_knob);
        let index = GbKmvIndex::build(&dataset, config);
        let sharded = GbKmvIndex::build(&dataset, config.shards(shards));
        let query = dataset.record(query_pick % dataset.len()).clone();

        let scan = index.search_scan(&query, t_star);
        let filtered = index.search_filtered(&query, t_star);
        let baseline = index.search_filtered_baseline(&query, t_star);

        // Bit-identical: SearchHit's PartialEq compares the f64 estimates
        // exactly, not approximately.
        prop_assert_eq!(&scan, &filtered,
            "pruned pipeline diverged from scan (t*={}, budget={})", t_star, budget_fraction);
        prop_assert_eq!(&scan, &baseline,
            "baseline diverged from scan (t*={}, budget={})", t_star, budget_fraction);

        // Pruning and prefix filtering are structural, never semantic: all
        // four toggle combinations agree.
        let mut unpruned = QueryPipeline::new().pruning(false);
        prop_assert_eq!(&scan, &unpruned.search(&index, query.elements(), t_star),
            "disabling the prune stage changed the answer (t*={})", t_star);
        let mut unprefixed = QueryPipeline::new().prefix_filter(false);
        prop_assert_eq!(&scan, &unprefixed.search(&index, query.elements(), t_star),
            "disabling the prefix filter changed the answer (t*={})", t_star);
        let mut neither = QueryPipeline::new().pruning(false).prefix_filter(false);
        prop_assert_eq!(&scan, &neither.search(&index, query.elements(), t_star),
            "the PR-2 ablation (no prune, no prefix) diverged (t*={})", t_star);

        // Sharding never changes an answer either, on the single-query, the
        // parallel batch or the intra-query parallel path, for any thread
        // count.
        prop_assert_eq!(&scan, &sharded.search_filtered(&query, t_star),
            "{}-shard pipeline diverged from scan (t*={})", shards, t_star);
        let batch_queries = [query.clone(), query.clone()];
        for threads in [1usize, 3] {
            let batch = sharded.search_batch_threads(&batch_queries, t_star, threads);
            prop_assert_eq!(batch.len(), 2);
            for hits in batch {
                prop_assert_eq!(&scan, &hits,
                    "batch on {} shards / {} threads diverged (t*={})", shards, threads, t_star);
            }
            prop_assert_eq!(
                &scan,
                &sharded.search_parallel_threads(query.elements(), t_star, threads),
                "intra-query parallel on {} shards / {} threads diverged (t*={})",
                shards, threads, t_star);
        }

        // Posting format is pure storage: the raw-format ablation of both
        // the unsharded and the sharded index returns bit-identical hits
        // (the default indexes above run the packed format).
        let raw_format = GbKmvIndex::build(&dataset, config.posting_format(PostingFormat::Raw));
        prop_assert_eq!(&scan, &raw_format.search_filtered(&query, t_star),
            "raw posting format diverged from scan (t*={})", t_star);
        let raw_sharded = GbKmvIndex::build(
            &dataset, config.shards(shards).posting_format(PostingFormat::Raw));
        prop_assert_eq!(&scan, &raw_sharded.search_filtered(&query, t_star),
            "raw-format {}-shard pipeline diverged (t*={})", shards, t_star);

        // The finish kernel is pure mechanics: the scalar-oracle config and
        // a scalar pipeline over the vectorized-default index both return
        // bit-identical hits (the default indexes above run vectorized).
        let scalar = GbKmvIndex::build(&dataset, config.finish_kernel(FinishKernel::Scalar));
        prop_assert_eq!(&scan, &scalar.search_filtered(&query, t_star),
            "scalar finish kernel diverged from scan (t*={})", t_star);
        let mut scalar_pipeline = QueryPipeline::new().finish_kernel(FinishKernel::Scalar);
        prop_assert_eq!(&scan, &scalar_pipeline.search(&index, query.elements(), t_star),
            "scalar-kernel pipeline over a vectorized index diverged (t*={})", t_star);

        // The auto-scheduled path picks its own engine but never its own
        // answers — single-query and multi-query workloads alike.
        let auto = sharded.search_auto(std::slice::from_ref(&query), t_star);
        prop_assert_eq!(auto.len(), 1);
        prop_assert_eq!(&scan, &auto[0], "single-query search_auto diverged (t*={})", t_star);
        let auto2 = sharded.search_auto(&[query.clone(), query.clone()], t_star);
        for hits in auto2 {
            prop_assert_eq!(&scan, &hits, "multi-query search_auto diverged (t*={})", t_star);
        }

        // The ContainmentIndex ordering contract: ascending record id.
        prop_assert!(scan.windows(2).all(|w| w[0].record_id < w[1].record_id));

        // Reusing one scratch for a second pass over the same query changes
        // nothing (epoch reset works under arbitrary configurations).
        let mut scratch = QueryScratch::new();
        let first = index.search_filtered_with(&query, t_star, &mut scratch);
        let second = index.search_filtered_with(&query, t_star, &mut scratch);
        prop_assert_eq!(&first, &second, "scratch reuse leaked state");
        prop_assert_eq!(&first, &scan, "explicit-scratch path diverged from scan");
    }

    #[test]
    fn saturated_sketches_and_empty_queries_agree(
        dataset in dataset_strategy(),
        t_star in 0.0f64..1.0,
        shards in 1usize..4,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        // A budget above the dataset size saturates every sketch (τ admits
        // everything), the edge where the estimator switches to exact
        // counts — pruning and sharding must stay invisible there too.
        let config = GbKmvConfig::with_space_fraction(2.0)
            .hash_seed(seed | 1)
            .shards(shards);
        let index = GbKmvIndex::build(&dataset, config);
        let query = dataset.record(query_pick % dataset.len()).clone();

        let scan = index.search_scan(&query, t_star);
        prop_assert_eq!(&scan, &index.search_filtered(&query, t_star),
            "saturated: pruned pipeline diverged from scan (t*={})", t_star);
        prop_assert_eq!(&scan, &index.search_filtered_baseline(&query, t_star),
            "saturated: baseline diverged from scan (t*={})", t_star);

        // Empty query: θ = t*·0 = 0, so every path must degenerate to the
        // all-records answer with zero estimates, identically.
        let empty_scan = index.search_scan(&Record::default(), t_star);
        prop_assert_eq!(empty_scan.len(), dataset.len());
        prop_assert!(empty_scan.iter().all(|h| h.estimated_containment == 0.0));
        prop_assert_eq!(&empty_scan, &index.search_elements(&[], t_star));
        prop_assert_eq!(&empty_scan, &index.search_filtered(&Record::default(), t_star));
        let batch = index.search_batch(&[Record::default()], t_star);
        prop_assert_eq!(&empty_scan, &batch[0],
            "empty-query batch diverged (t*={})", t_star);
    }

    #[test]
    fn prefix_filter_degenerate_cases_agree(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.1,
        tiny_t in 0.0005f64..0.05,
        shards in 1usize..4,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
        absent_base in 5_000u32..50_000,
    ) {
        // The two degenerate regimes of the prefix filter, crossed with
        // sharding, batching and the thread counts of both parallel paths:
        //
        // * t* = 0 (and tiny t* where θ_sig ≤ 1): no prefix exists — every
        //   signature hash mints, and the walk must degrade to the plain
        //   accumulator (t* = 0 itself short-circuits to the scan);
        // * a query whose signature shares nothing with the index: every
        //   hash has df 0, no posting exists, and every path must agree on
        //   the (at positive thresholds, empty) answer.
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .shards(shards);
        let index = GbKmvIndex::build(&dataset, config);
        let in_dataset = dataset.record(query_pick % dataset.len()).clone();
        // Dataset elements live in 0..3_000; this query shares none.
        let absent = Record::new((absent_base..absent_base + 30).collect());

        for (label, query) in [("sampled", &in_dataset), ("absent", &absent)] {
            for &t_star in &[0.0, tiny_t, 0.6] {
                let scan = index.search_scan(query, t_star);
                prop_assert_eq!(&scan, &index.search_filtered(query, t_star),
                    "{} query: pipeline diverged (t*={})", label, t_star);
                prop_assert_eq!(
                    &scan,
                    &index.search_parallel_threads(query.elements(), t_star, 3),
                    "{} query: intra-query parallel diverged (t*={})", label, t_star);
                let batch = index.search_batch_threads(
                    std::slice::from_ref(query), t_star, 2);
                prop_assert_eq!(&scan, &batch[0],
                    "{} query: batch diverged (t*={})", label, t_star);
            }
        }
        let positive_absent = index.search_filtered(&absent, 0.6);
        prop_assert!(positive_absent.is_empty(),
            "absent-signature query matched records at a positive threshold");
    }

    #[test]
    fn filtered_topk_matches_positive_score_reference(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.0,
        k in 1usize..20,
        shards in 1usize..4,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        // Candidate-filtered top-k ranks exactly the records sharing a
        // posting with the query, which are exactly the records with a
        // strictly positive estimate. The reference is therefore the
        // sort-everything ranking of `search_scan` restricted to
        // positive-score hits.
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .shards(shards);
        let index = GbKmvIndex::build(&dataset, config);
        let query = dataset.record(query_pick % dataset.len()).clone();

        let top = index.search_topk(&query, k);

        let mut reference: Vec<SearchHit> = index.search_scan(&query, 0.0);
        reference.sort_by(|a, b| {
            b.estimated_containment
                .total_cmp(&a.estimated_containment)
                .then_with(|| a.record_id.cmp(&b.record_id))
        });
        reference.retain(|h| h.estimated_overlap > 0.0);
        reference.truncate(k);
        prop_assert_eq!(top, reference, "filtered heap top-k diverged from reference");
    }

    #[test]
    fn heap_topk_matches_sort_everything_reference(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.0,
        k in 1usize..20,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
    ) {
        // Scan mode ranks *every* record, so the reference is unambiguous.
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .candidate_filter(false);
        let index = GbKmvIndex::build(&dataset, config);
        let qid = query_pick % dataset.len();
        let query = dataset.record(qid).clone();

        let top = index.search_topk(&query, k);

        // Reference: estimate every record (threshold 0 returns all), sort by
        // (containment desc, record id asc), truncate.
        let mut reference: Vec<SearchHit> = index.search_scan(&query, 0.0);
        reference.sort_by(|a, b| {
            b.estimated_containment
                .total_cmp(&a.estimated_containment)
                .then_with(|| a.record_id.cmp(&b.record_id))
        });
        reference.truncate(k);
        prop_assert_eq!(top, reference, "heap top-k diverged from sort reference");
    }

    #[test]
    fn insert_then_search_matches_scan_on_grown_index(
        dataset in dataset_strategy(),
        extra in vec(vec(0u32..3_000, 1..80), 1..6),
        budget_fraction in 0.05f64..1.1,
        t_star in 0.0f64..1.0,
        shards in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        // Dynamic inserts go through the same sharded, size-ordered path as
        // the bulk build; the pruned pipeline must stay exact on the grown
        // index (the scan recomputes from the stored sketches, so this
        // cross-checks the posting renumbering — crossed with both posting
        // formats, since the packed renumber/splice rewrites whole blocks).
        let inserted: Vec<Record> = extra.into_iter().map(Record::new).collect();
        for format in [PostingFormat::Packed, PostingFormat::Raw] {
            let config = GbKmvConfig::with_space_fraction(budget_fraction)
                .hash_seed(seed | 1)
                .shards(shards)
                .posting_format(format);
            let mut index = GbKmvIndex::build(&dataset, config);
            for record in &inserted {
                index.insert(record);
            }
            for query in inserted.iter().chain(std::iter::once(dataset.record(0))) {
                let scan = index.search_scan(query, t_star);
                prop_assert_eq!(&scan, &index.search_filtered(query, t_star),
                    "grown {}-shard {:?}-format index: pipeline diverged from scan (t*={})",
                    shards, format, t_star);
            }
        }
    }

    #[test]
    fn finish_kernels_agree_across_every_engine_variant(
        dataset in dataset_strategy(),
        budget_fraction in 0.05f64..1.1,
        t_star in 0.0f64..1.0,
        shards in 1usize..5,
        seed in 0u64..1_000_000,
        query_pick in 0usize..1_000,
        k in 1usize..12,
        extra in vec(vec(0u32..3_000, 1..60), 1..3),
    ) {
        // The dedicated kernel-dimension sweep: scalar vs vectorized,
        // crossed with posting format × prefix filter × shard count, over
        // the sequential, intra-query-parallel, batch and top-k paths and
        // the serving layer — every combination pinned bit-identical to
        // the kernel-free scan reference.
        let base = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .shards(shards);
        let query = dataset.record(query_pick % dataset.len()).clone();
        let reference = GbKmvIndex::build(&dataset, base);
        let scan = reference.search_scan(&query, t_star);
        let topk_reference = reference.search_topk(&query, k);
        let inserted: Vec<Record> = extra.into_iter().map(Record::new).collect();

        // The persistence dimension: a save→load round trip through the
        // arena format (in memory — same bytes `save`/`open` move through
        // a file) is pure storage. The loaded index borrows its arenas
        // zero-copy yet must be bit-identical in storage and in answers,
        // and a re-save must reproduce the bytes exactly.
        let arena = reference.to_arena_bytes();
        let loaded = GbKmvIndex::from_arena_bytes(&arena).expect("arena round trip failed");
        prop_assert_eq!(loaded.sharded(), reference.sharded(),
            "loaded storage diverged from the built index ({} shards)", shards);
        prop_assert_eq!(&scan, &loaded.search_filtered(&query, t_star),
            "loaded index answers diverged (t*={})", t_star);
        prop_assert_eq!(&topk_reference, &loaded.search_topk(&query, k),
            "loaded index top-k diverged (k={})", k);
        prop_assert_eq!(loaded.to_arena_bytes(), arena, "re-saved arena bytes diverged");

        for kernel in [FinishKernel::Scalar, FinishKernel::Vectorized] {
            for format in [PostingFormat::Packed, PostingFormat::Raw] {
                for prefix in [true, false] {
                    let config = base
                        .finish_kernel(kernel)
                        .posting_format(format)
                        .prefix_filter(prefix);
                    let index = GbKmvIndex::build(&dataset, config);
                    let label = format!("{kernel:?}/{format:?}/prefix={prefix}");
                    prop_assert_eq!(&scan, &index.search_filtered(&query, t_star),
                        "{}: sequential pipeline diverged (t*={})", &label, t_star);
                    prop_assert_eq!(
                        &scan,
                        &index.search_parallel_threads(query.elements(), t_star, 3),
                        "{}: intra-query parallel diverged (t*={})", &label, t_star);
                    let batch = index.search_batch_threads(
                        std::slice::from_ref(&query), t_star, 2);
                    prop_assert_eq!(&scan, &batch[0],
                        "{}: batch diverged (t*={})", &label, t_star);
                    prop_assert_eq!(&topk_reference, &index.search_topk(&query, k),
                        "{}: top-k diverged (k={})", &label, k);
                }
            }

            // The service dimension: snapshots of a scalar-kernel and a
            // vectorized-kernel service answer identically as they grow.
            let config = base.finish_kernel(kernel);
            let service = ContainmentService::new(GbKmvIndex::build(&dataset, config));
            let mut grown = GbKmvIndex::build(&dataset, config);
            for record in &inserted {
                service.submit(record.clone()).unwrap();
                grown.insert(record);
            }
            service.flush();
            let snapshot = service.snapshot();
            prop_assert_eq!(
                &snapshot.search_filtered(&query, t_star),
                &grown.search_filtered(&query, t_star),
                "{:?}: service snapshot diverged from the grown index (t*={})",
                kernel, t_star);
            prop_assert_eq!(
                &snapshot.search_filtered(&query, t_star),
                &snapshot.search_scan(&query, t_star),
                "{:?}: grown service snapshot diverged from its own scan (t*={})",
                kernel, t_star);
        }
    }

    #[test]
    fn service_generations_match_sequentially_grown_index(
        dataset in dataset_strategy(),
        extra in vec(vec(0u32..3_000, 1..80), 1..9),
        budget_fraction in 0.05f64..1.1,
        t_star in 0.0f64..1.0,
        shards in 1usize..4,
        seed in 0u64..1_000_000,
        batch in 1usize..4,
    ) {
        // The service dimension of the agreement suite: every generation a
        // `ContainmentService` publishes must be bit-identical — storage and
        // answers — to an index grown by the same `insert` calls applied
        // directly, for any shard count and ingest batch size. (A *rebuild*
        // from the grown dataset is deliberately not the reference: it
        // would re-derive τ and r from the new statistics, while both the
        // service and direct inserts keep the build-time sketcher.)
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .shards(shards)
            .ingest_batch(batch);
        let service = ContainmentService::new(GbKmvIndex::build(&dataset, config));
        let mut reference = GbKmvIndex::build(&dataset, config);
        let inserted: Vec<Record> = extra.into_iter().map(Record::new).collect();
        for record in &inserted {
            // `submit` may auto-publish mid-stream (batch size 1 always
            // does); the explicit flush then drains whatever is left, so
            // the published snapshot covers exactly the records so far.
            service.submit(record.clone()).unwrap();
            reference.insert(record);
            service.flush();
            let snapshot = service.snapshot();
            prop_assert_eq!(snapshot.sharded(), reference.sharded(),
                "published generation {} diverged from the sequentially grown \
                 index ({} shards, batch {})",
                service.generation(), shards, batch);
            prop_assert_eq!(
                &snapshot.search_filtered(record, t_star),
                &reference.search_filtered(record, t_star),
                "service snapshot answers diverged (t*={})", t_star);
        }
        prop_assert_eq!(service.pending(), 0);
    }

    #[test]
    fn cow_publication_keeps_every_held_snapshot_bit_identical(
        dataset in dataset_strategy(),
        extra in vec(vec(0u32..3_000, 1..80), 2..7),
        budget_fraction in 0.05f64..1.1,
        t_star in 0.0f64..1.0,
        shards in 2usize..5,
        seed in 0u64..1_000_000,
        format_knob in 0usize..2,
        kernel_knob in 0usize..2,
    ) {
        // The copy-on-write dimension of the agreement suite, crossed with
        // posting format and finish kernel: generations share untouched
        // shards behind `Arc`s, so this pins (a) that a *held* snapshot
        // stays bit-identical to its sequentially grown reference prefix
        // while later flushes mutate the index underneath it, and (b) that
        // the sharing is real — non-tail shards of consecutive generations
        // are pointer-equal, the lineage stamp is stable, and only the
        // tail shard's dirty epoch moves.
        let format = [PostingFormat::Packed, PostingFormat::Raw][format_knob];
        let kernel = [FinishKernel::Vectorized, FinishKernel::Scalar][kernel_knob];
        let config = GbKmvConfig::with_space_fraction(budget_fraction)
            .hash_seed(seed | 1)
            .shards(shards)
            .posting_format(format)
            .finish_kernel(kernel)
            .ingest_batch(1_000_000); // flushes are explicit below
        let service = ContainmentService::new(GbKmvIndex::build(&dataset, config));
        let mut reference = GbKmvIndex::build(&dataset, config);
        let inserted: Vec<Record> = extra.into_iter().map(Record::new).collect();
        let query = dataset.record(0).clone();

        // Held snapshots and the reference state they must keep matching
        // (the reference clone is itself a COW clone — mutating `reference`
        // afterwards must not disturb it).
        let mut held = vec![(service.snapshot(), reference.clone())];
        for record in &inserted {
            let before = service.snapshot();
            service.submit(record.clone()).unwrap();
            reference.insert(record);
            service.flush();
            let after = service.snapshot();

            // (b) structural sharing across the publication.
            let (prev, next) = (before.sharded(), after.sharded());
            prop_assert_eq!(prev.lineage(), next.lineage(), "lineage changed across a flush");
            let n = prev.shards().len();
            prop_assert_eq!(n, next.shards().len());
            for i in 0..n - 1 {
                prop_assert!(
                    std::sync::Arc::ptr_eq(&prev.shards()[i], &next.shards()[i]),
                    "untouched shard {} was copied by a tail-only flush ({} shards)", i, n);
                prop_assert_eq!(prev.epochs()[i], next.epochs()[i],
                    "untouched shard {}'s epoch moved", i);
            }
            prop_assert!(
                !std::sync::Arc::ptr_eq(&prev.shards()[n - 1], &next.shards()[n - 1]),
                "the tail shard must be copied, not mutated in place");
            prop_assert!(prev.epochs()[n - 1] != next.epochs()[n - 1],
                "the tail shard's epoch must move");

            held.push((after, reference.clone()));
        }

        // (a) every held snapshot still equals its reference prefix.
        for (generation, (snapshot, prefix)) in held.iter().enumerate() {
            prop_assert_eq!(snapshot.sharded(), prefix.sharded(),
                "held snapshot of generation {} diverged ({:?}/{:?})",
                generation, format, kernel);
            prop_assert_eq!(
                &snapshot.search_filtered(&query, t_star),
                &prefix.search_filtered(&query, t_star),
                "held snapshot answers diverged at generation {} (t*={})",
                generation, t_star);
        }
    }
}

/// Readers racing a publishing writer must only ever observe fully
/// published generations: every result set seen by any reader is the answer
/// of *some* batch prefix, and the final state equals the sequentially
/// grown reference.
#[test]
fn concurrent_readers_observe_only_published_generations() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let base: Vec<Vec<u32>> = (0..24u32)
        .map(|i| (i * 7..i * 7 + 30).map(|x| x % 900).collect())
        .collect();
    let dataset = Dataset::from_records(base);
    let config = GbKmvConfig::with_space_fraction(0.4)
        .hash_seed(11)
        .shards(2);
    let service = ContainmentService::new(GbKmvIndex::build(&dataset, config));

    let batches: Vec<Vec<Record>> = (0..6u32)
        .map(|b| {
            (0..4u32)
                .map(|j| {
                    let start = b * 31 + j * 13;
                    Record::new((start..start + 25).map(|x| x % 900).collect())
                })
                .collect()
        })
        .collect();
    let query = Record::new((0..40u32).map(|x| x * 3 % 900).collect());
    let t_star = 0.25;

    // Expected answer per published generation, from a sequentially grown
    // reference (generation g = base index + the first g batches).
    let mut reference = GbKmvIndex::build(&dataset, config);
    let mut expected: Vec<Vec<SearchHit>> = vec![reference.search_filtered(&query, t_star)];
    for batch in &batches {
        for record in batch {
            reference.insert(record);
        }
        expected.push(reference.search_filtered(&query, t_star));
    }

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (service, expected, done, query) = (&service, &expected, &done, &query);
            scope.spawn(move || {
                let mut last_generation = 0u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snapshot = service.snapshot();
                    let hits = snapshot.search_filtered(query, t_star);
                    assert!(
                        expected.iter().any(|e| e == &hits),
                        "reader observed a result set matching no published generation"
                    );
                    let generation = service.generation();
                    assert!(
                        generation >= last_generation,
                        "generation counter went backwards: {last_generation} -> {generation}"
                    );
                    last_generation = generation;
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
        for batch in &batches {
            service
                .submit_batch(batch.clone())
                .expect("batch records are non-empty");
            service.flush();
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(service.generation(), batches.len() as u64);
    assert_eq!(service.pending(), 0);
    let final_snapshot = service.snapshot();
    assert_eq!(final_snapshot.sharded(), reference.sharded());
    assert_eq!(
        final_snapshot.search_filtered(&query, t_star),
        *expected.last().unwrap()
    );
}

/// Copy-on-write publication under a racing reader: tail-only flushes must
/// share every non-tail shard pointer-identically across generations, for
/// every pair of snapshots a reader happens to grab, and shared-aware
/// memory accounting must never double-count what is behind one `Arc`.
#[test]
fn concurrent_publication_shares_untouched_shards_pointer_identically() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dataset = Dataset::from_records(
        (0..32u32).map(|i| (i * 5..i * 5 + 24).map(|x| x % 700).collect::<Vec<_>>()),
    );
    let config = GbKmvConfig::with_space_fraction(0.5)
        .hash_seed(23)
        .shards(4)
        .ingest_batch(1_000_000);
    let service = ContainmentService::new(GbKmvIndex::build(&dataset, config));
    let num_shards = service.snapshot().sharded().shards().len();
    assert!(
        num_shards >= 2,
        "the sharing assertion needs non-tail shards"
    );

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (service, done) = (&service, &done);
            scope.spawn(move || {
                let mut prev = service.snapshot();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let next = service.snapshot();
                    // Inserts only ever touch the tail shard, so between
                    // ANY two snapshots — however many generations apart —
                    // the non-tail shards are the same allocations.
                    assert_eq!(prev.sharded().lineage(), next.sharded().lineage());
                    for i in 0..num_shards - 1 {
                        assert!(
                            Arc::ptr_eq(&prev.sharded().shards()[i], &next.sharded().shards()[i]),
                            "shard {i} was copied by a tail-only publication"
                        );
                    }
                    // Shared-aware accounting: the pair never costs more
                    // than the sum, and the invariant
                    // total + shared == sum of solo totals holds exactly.
                    let solo = prev.mem_usage().total_bytes() + next.mem_usage().total_bytes();
                    let pair = GbKmvIndex::mem_usage_shared([&*prev, &*next]);
                    assert_eq!(pair.total_bytes() + pair.shared_bytes, solo);
                    assert!(
                        pair.shared_bytes > 0,
                        "snapshots sharing non-tail shards must report shared bytes"
                    );
                    prev = next;
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
        for b in 0..8u32 {
            let record = Record::new((b * 11..b * 11 + 20).map(|x| x % 700).collect());
            service.submit(record).expect("non-empty record");
            service.flush();
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });
    assert_eq!(service.generation(), 8);
}
