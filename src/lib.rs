//! # gbkmv
//!
//! Umbrella crate for the GB-KMV reproduction: re-exports the core sketch
//! library and the supporting crates so examples and downstream users can
//! depend on a single crate.
//!
//! * [`core`] — the GB-KMV sketches, cost model and search index
//!   (the paper's contribution);
//! * [`lsh`] — MinHash, LSH Forest and the LSH Ensemble baseline;
//! * [`exact`] — exact containment search (brute force, FrequentSet, PPjoin);
//! * [`datagen`] — synthetic dataset generation and the Table II profiles;
//! * [`eval`] — metrics, ground truth and the experiment harness.
//!
//! ```
//! use gbkmv::prelude::*;
//!
//! let dataset = Dataset::from_records(vec![
//!     vec![1, 2, 3, 4, 7],
//!     vec![2, 3, 5],
//!     vec![2, 4, 5],
//!     vec![1, 2, 6, 10],
//! ]);
//! let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(1.0));
//! let hits = index.search(&[1, 2, 3, 5, 7, 9], 0.5);
//! assert!(hits.iter().any(|h| h.record_id == 0));
//! ```

#![deny(missing_docs)]

pub use gbkmv_core as core;
pub use gbkmv_datagen as datagen;
pub use gbkmv_eval as eval;
pub use gbkmv_exact as exact;
pub use gbkmv_lsh as lsh;

/// Commonly used items, re-exported for `use gbkmv::prelude::*`.
pub mod prelude {
    pub use gbkmv_core::dataset::{Dataset, DatasetBuilder, Record};
    pub use gbkmv_core::index::{
        ContainmentIndex, GbKmvConfig, GbKmvIndex, PostingFormat, QueryPipeline, SearchHit,
        ShardedIndex,
    };
    pub use gbkmv_core::sim::{containment, jaccard};
    pub use gbkmv_core::stats::DatasetStats;
    pub use gbkmv_core::store::{QueryScratch, SketchStore, SketchView};
    pub use gbkmv_datagen::profiles::DatasetProfile;
    pub use gbkmv_datagen::queries::QueryWorkload;
    pub use gbkmv_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
    pub use gbkmv_eval::experiment::{evaluate_index, evaluate_index_auto, evaluate_index_batch};
    pub use gbkmv_eval::ground_truth::GroundTruth;
    pub use gbkmv_exact::brute::BruteForceIndex;
    pub use gbkmv_lsh::ensemble::{LshEnsembleConfig, LshEnsembleIndex};
}
