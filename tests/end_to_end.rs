//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through index construction to evaluated search accuracy, for
//! every method in the repository.

use gbkmv::core::index::{ContainmentIndex, GbKmvConfig, GbKmvIndex};
use gbkmv::core::stats::DatasetStats;
use gbkmv::core::variants::{build_gkmv_index, KmvConfig, KmvIndex, PartitionedKmvIndex};
use gbkmv::datagen::profiles::DatasetProfile;
use gbkmv::datagen::queries::QueryWorkload;
use gbkmv::datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use gbkmv::eval::experiment::evaluate_index;
use gbkmv::eval::ground_truth::GroundTruth;
use gbkmv::exact::brute::BruteForceIndex;
use gbkmv::exact::freqset::FrequentSetIndex;
use gbkmv::exact::ppjoin::PpJoinIndex;
use gbkmv::lsh::ensemble::{LshEnsembleConfig, LshEnsembleIndex};

fn test_dataset() -> gbkmv::core::dataset::Dataset {
    SyntheticDataset::generate(SyntheticConfig {
        num_records: 400,
        universe_size: 12_000,
        alpha_element_freq: 1.15,
        alpha_record_size: 2.5,
        min_record_len: 20,
        max_record_len: 400,
        seed: 2024,
    })
    .dataset
}

#[test]
fn exact_methods_agree_pairwise() {
    let dataset = test_dataset();
    let brute = BruteForceIndex::build(&dataset);
    let ppjoin = PpJoinIndex::build(&dataset);
    let freqset = FrequentSetIndex::build(&dataset);
    let workload = QueryWorkload::sample_from_dataset(&dataset, 15, 1);
    for (qi, query) in workload.queries.iter().enumerate() {
        for &t in &[0.3, 0.5, 0.8] {
            let mut a: Vec<usize> = brute
                .search(query.elements(), t)
                .iter()
                .map(|h| h.record_id)
                .collect();
            let mut b: Vec<usize> = ppjoin
                .search(query.elements(), t)
                .iter()
                .map(|h| h.record_id)
                .collect();
            let mut c: Vec<usize> = freqset
                .search(query.elements(), t)
                .iter()
                .map(|h| h.record_id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            assert_eq!(
                a, b,
                "ppjoin disagreed with brute force (query {qi}, t={t})"
            );
            assert_eq!(
                a, c,
                "freqset disagreed with brute force (query {qi}, t={t})"
            );
        }
    }
}

#[test]
fn gbkmv_beats_plain_kmv_on_f1() {
    // The headline Figure 6 claim, as an integration test: under the same
    // 10% budget, GB-KMV's F1 is at least as good as plain KMV's (with a
    // small tolerance for sampling noise on the scaled data).
    let dataset = test_dataset();
    let workload = QueryWorkload::sample_from_dataset(&dataset, 40, 2);
    let truth = GroundTruth::compute(&dataset, &workload.queries, 0.5);
    let total = dataset.total_elements();

    let gbkmv = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.10));
    let kmv = KmvIndex::build(&dataset, KmvConfig::with_space_fraction(0.10));
    let g = evaluate_index(&gbkmv, &workload.queries, &truth, 0.5, total);
    let k = evaluate_index(&kmv, &workload.queries, &truth, 0.5, total);
    assert!(
        g.accuracy.f1 + 0.05 >= k.accuracy.f1,
        "GB-KMV F1 {} should not be below KMV F1 {}",
        g.accuracy.f1,
        k.accuracy.f1
    );
    // Absolute accuracy on this small, short-record synthetic dataset is
    // modest (each record only gets a handful of hash values at 10%); the
    // paper-scale comparison lives in the benchmark binaries.
    assert!(
        g.accuracy.f1 > 0.3,
        "GB-KMV F1 {} unexpectedly low",
        g.accuracy.f1
    );
}

#[test]
fn gkmv_improves_over_kmv_under_tight_budget() {
    let dataset = test_dataset();
    let workload = QueryWorkload::sample_from_dataset(&dataset, 40, 3);
    let truth = GroundTruth::compute(&dataset, &workload.queries, 0.5);
    let total = dataset.total_elements();

    let gkmv = build_gkmv_index(&dataset, 0.05);
    let kmv = KmvIndex::build(&dataset, KmvConfig::with_space_fraction(0.05));
    let g = evaluate_index(&gkmv, &workload.queries, &truth, 0.5, total);
    let k = evaluate_index(&kmv, &workload.queries, &truth, 0.5, total);
    assert!(
        g.accuracy.f1 + 0.05 >= k.accuracy.f1,
        "G-KMV F1 {} should not be below KMV F1 {}",
        g.accuracy.f1,
        k.accuracy.f1
    );
}

#[test]
fn gbkmv_dominates_lshe_on_space_accuracy() {
    // Figures 7–13 claim, coarse version: at comparable (or larger for
    // LSH-E) space, GB-KMV's F1 beats LSH-E's.
    let dataset = test_dataset();
    let workload = QueryWorkload::sample_from_dataset(&dataset, 40, 4);
    let truth = GroundTruth::compute(&dataset, &workload.queries, 0.5);
    let total = dataset.total_elements();

    let gbkmv = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.10));
    let lshe = LshEnsembleIndex::build(
        &dataset,
        LshEnsembleConfig::with_num_hashes(64).partitions(16),
    );
    let g = evaluate_index(&gbkmv, &workload.queries, &truth, 0.5, total);
    let l = evaluate_index(&lshe, &workload.queries, &truth, 0.5, total);
    assert!(
        g.space_elements <= l.space_elements,
        "test setup: GB-KMV should use no more space than LSH-E ({} vs {})",
        g.space_elements,
        l.space_elements
    );
    assert!(
        g.accuracy.f1 > l.accuracy.f1,
        "GB-KMV F1 {} should beat LSH-E F1 {} at comparable space",
        g.accuracy.f1,
        l.accuracy.f1
    );
}

#[test]
fn all_methods_recall_their_own_record() {
    let dataset = test_dataset();
    let indexes: Vec<Box<dyn ContainmentIndex>> = vec![
        Box::new(GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.25),
        )),
        Box::new(KmvIndex::build(
            &dataset,
            KmvConfig::with_space_fraction(0.25),
        )),
        Box::new(PartitionedKmvIndex::build(
            &dataset,
            KmvConfig::with_space_fraction(0.25),
        )),
        Box::new(BruteForceIndex::build(&dataset)),
        Box::new(PpJoinIndex::build(&dataset)),
        Box::new(FrequentSetIndex::build(&dataset)),
        Box::new(LshEnsembleIndex::build(
            &dataset,
            LshEnsembleConfig::with_num_hashes(128).partitions(8),
        )),
    ];
    for index in &indexes {
        let mut found = 0;
        let probes = [0usize, 57, 123, 311];
        for &qid in &probes {
            let hits = index.search(dataset.record(qid).elements(), 0.5);
            if hits.iter().any(|h| h.record_id == qid) {
                found += 1;
            }
        }
        assert!(
            found >= probes.len() - 1,
            "{} recalled only {found}/{} self-queries at t*=0.5",
            index.name(),
            probes.len()
        );
    }
}

#[test]
fn profile_generation_and_stats_are_consistent() {
    for profile in DatasetProfile::table2_profiles() {
        let dataset = profile.generate_scaled(8);
        let stats = DatasetStats::compute(&dataset);
        assert_eq!(stats.num_records, dataset.len());
        assert_eq!(stats.total_elements, dataset.total_elements());
        assert!(stats.alpha1_element_freq >= 0.0);
        // Every profile is skewed enough that the top-8 elements cover more
        // than the uniform share of occurrences.
        let uniform_share = 8.0 / stats.num_distinct_elements.max(1) as f64;
        assert!(
            stats.fr(8) > uniform_share,
            "{}: top-8 share {} not above uniform {}",
            profile.name(),
            stats.fr(8),
            uniform_share
        );
    }
}

#[test]
fn space_budget_is_respected_across_profiles() {
    for profile in [DatasetProfile::Netflix, DatasetProfile::WdcWebTables] {
        let dataset = profile.generate_scaled(8);
        for &fraction in &[0.05f64, 0.10, 0.20] {
            let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(fraction));
            let used = index.space_elements();
            let budget = fraction * dataset.total_elements() as f64;
            assert!(
                used <= budget * 1.10 + 16.0,
                "{} at {:.0}%: used {} elements vs budget {}",
                profile.name(),
                fraction * 100.0,
                used,
                budget
            );
        }
    }
}
