//! Property-based tests (proptest) for the core invariants of the sketches
//! and the search pipeline.
//!
//! These complement the unit tests with randomised inputs: arbitrary record
//! contents, arbitrary budgets and thresholds. Each property encodes an
//! invariant the paper's correctness arguments rely on (Theorem 2's validity
//! of the G-KMV union, unbiasedness bounds, no-false-negatives of the exact
//! prefix filter, agreement between the accelerated and the scan search).

use proptest::collection::vec;
use proptest::prelude::*;

use gbkmv::core::dataset::{Dataset, Record};
use gbkmv::core::gkmv::{GKmvSketch, GlobalThreshold};
use gbkmv::core::hash::Hasher64;
use gbkmv::core::index::{ContainmentIndex, GbKmvConfig, GbKmvIndex};
use gbkmv::core::kmv::{intersection_variance, KmvSketch};
use gbkmv::core::sim::{containment, jaccard, SimilarityTransform};
use gbkmv::exact::brute::BruteForceIndex;
use gbkmv::exact::ppjoin::PpJoinIndex;

/// Strategy: a record as a set of element ids drawn from a smallish universe
/// so records overlap frequently.
fn record_strategy(max_universe: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    vec(0..max_universe, 1..max_len)
}

/// Strategy: a small dataset of such records.
fn dataset_strategy(records: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(record_strategy(600, 80), 2..records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmv_distinct_estimate_is_exact_for_small_records(elements in record_strategy(10_000, 60)) {
        // A record with at most 60 elements fits a k=64 sketch entirely, so
        // the estimate must equal the exact distinct count.
        let record = Record::new(elements);
        let sketch = KmvSketch::from_record(&record, &Hasher64::new(1), 64);
        prop_assert!(sketch.is_exhaustive());
        prop_assert_eq!(sketch.distinct_estimate() as usize, record.len());
    }

    #[test]
    fn kmv_union_sketch_is_subset_of_inputs(a in record_strategy(500, 60), b in record_strategy(500, 60)) {
        let hasher = Hasher64::new(2);
        let sa = KmvSketch::from_record(&Record::new(a), &hasher, 16);
        let sb = KmvSketch::from_record(&Record::new(b), &hasher, 16);
        let union = sa.union_with(&sb);
        prop_assert!(union.len() <= 16);
        for &h in union.hashes() {
            prop_assert!(sa.hashes().contains(&h) || sb.hashes().contains(&h));
        }
    }

    #[test]
    fn gkmv_saturated_pair_estimates_are_exact(a in record_strategy(400, 60), b in record_strategy(400, 60)) {
        // With τ = keep-all, the G-KMV pair estimate equals the exact
        // intersection and union sizes (the degenerate case of Theorem 2).
        let hasher = Hasher64::new(3);
        let ra = Record::new(a);
        let rb = Record::new(b);
        let sa = GKmvSketch::from_record(&ra, &hasher, GlobalThreshold::keep_all());
        let sb = GKmvSketch::from_record(&rb, &hasher, GlobalThreshold::keep_all());
        let pair = sa.pair_estimate(&sb);
        prop_assert_eq!(pair.k_intersection, ra.intersection_size(&rb));
        prop_assert_eq!(pair.k, ra.union_size(&rb));
        prop_assert!((pair.intersection_estimate - ra.intersection_size(&rb) as f64).abs() < 1e-9);
    }

    #[test]
    fn gkmv_k_is_never_smaller_than_either_sketch(a in record_strategy(400, 60), b in record_strategy(400, 60)) {
        // k = |L_Q ∪ L_X| ≥ max(|L_Q|, |L_X|): the quantity Theorem 3's
        // advantage over plain KMV rests on.
        let hasher = Hasher64::new(4);
        let threshold = GlobalThreshold { raw: u64::MAX / 3 };
        let sa = GKmvSketch::from_record(&Record::new(a), &hasher, threshold);
        let sb = GKmvSketch::from_record(&Record::new(b), &hasher, threshold);
        let pair = sa.pair_estimate(&sb);
        prop_assert!(pair.k >= sa.len().max(sb.len()));
        prop_assert!(pair.k_intersection <= sa.len().min(sb.len()));
    }

    #[test]
    fn containment_and_jaccard_relations_hold(a in record_strategy(300, 60), b in record_strategy(300, 60)) {
        let ra = Record::new(a);
        let rb = Record::new(b);
        let c = containment(&ra, &rb);
        let j = jaccard(&ra, &rb);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((0.0..=1.0).contains(&j));
        // Containment is at least the Jaccard similarity (|Q| ≤ |Q ∪ X|).
        prop_assert!(c + 1e-12 >= j);
        // The Equation-12 transform maps the true Jaccard to the true
        // containment when fed the true record size.
        if !ra.is_empty() {
            let transform = SimilarityTransform::new(rb.len(), ra.len());
            prop_assert!((transform.jaccard_to_containment(j) - c).abs() < 1e-9);
        }
    }

    #[test]
    fn variance_formula_is_monotone_in_k(
        d_inter in 1.0f64..500.0,
        extra in 0.0f64..500.0,
        k in 3.0f64..200.0,
    ) {
        // Lemma 2: variance decreases as k grows.
        let d_union = d_inter + extra;
        let v1 = intersection_variance(d_inter, d_union, k);
        let v2 = intersection_variance(d_inter, d_union, k + 10.0);
        prop_assert!(v2 <= v1 + 1e-9);
    }

    #[test]
    fn ppjoin_has_no_false_negatives(records in dataset_strategy(25), t in 0.1f64..1.0) {
        let dataset = Dataset::from_records(records);
        let brute = BruteForceIndex::build(&dataset);
        let ppjoin = PpJoinIndex::build(&dataset);
        // Use the first record as the query.
        let query = dataset.record(0).clone();
        let truth = brute.ground_truth(&query, t);
        let answer: Vec<usize> = ppjoin
            .search(query.elements(), t)
            .iter()
            .map(|h| h.record_id)
            .collect();
        for id in truth {
            prop_assert!(answer.contains(&id), "ppjoin missed record {id} at t={t}");
        }
    }

    #[test]
    fn gbkmv_filtered_search_matches_scan(records in dataset_strategy(30), t in 0.2f64..0.9) {
        let dataset = Dataset::from_records(records);
        let filtered = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.5));
        let scan = GbKmvIndex::build(
            &dataset,
            GbKmvConfig::with_space_fraction(0.5).candidate_filter(false),
        );
        let query = dataset.record(dataset.len() / 2).clone();
        let mut a: Vec<usize> = filtered
            .search(query.elements(), t)
            .iter()
            .map(|h| h.record_id)
            .collect();
        let mut b: Vec<usize> = scan
            .search(query.elements(), t)
            .iter()
            .map(|h| h.record_id)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gbkmv_full_budget_search_is_exact(records in dataset_strategy(25), t in 0.2f64..0.9) {
        // With a budget covering the whole dataset every sketch is
        // saturated, so the approximate search must return exactly the
        // ground truth.
        let dataset = Dataset::from_records(records);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
        let brute = BruteForceIndex::build(&dataset);
        let query = dataset.record(0).clone();
        let mut answer: Vec<usize> = index
            .search(query.elements(), t)
            .iter()
            .map(|h| h.record_id)
            .collect();
        let mut truth = brute.ground_truth(&query, t);
        answer.sort_unstable();
        truth.sort_unstable();
        prop_assert_eq!(answer, truth);
    }

    #[test]
    fn estimated_containment_is_bounded(records in dataset_strategy(20)) {
        let dataset = Dataset::from_records(records);
        let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.4));
        let query = dataset.record(0);
        for rid in 0..dataset.len() {
            let est = index.estimate_containment(query, rid);
            prop_assert!(est >= 0.0);
            // The estimator divides an intersection estimate by |Q|; the
            // estimate can exceed 1 slightly through estimation error but
            // must stay within a sane bound.
            prop_assert!(est <= 3.0, "estimate {est} absurdly large");
        }
    }
}
