//! Smoke test mirroring `examples/quickstart.rs` end-to-end: generate a
//! synthetic dataset, build a GB-KMV index, search, and check the result
//! against the exact brute-force oracle.

use gbkmv::prelude::*;

fn smoke_dataset() -> Dataset {
    SyntheticDataset::generate(SyntheticConfig {
        num_records: 500,
        universe_size: 10_000,
        alpha_element_freq: 1.1,
        alpha_record_size: 2.5,
        min_record_len: 40,
        max_record_len: 400,
        seed: 7,
    })
    .dataset
}

#[test]
fn quickstart_pipeline_has_perfect_recall_at_high_threshold() {
    let dataset = smoke_dataset();

    // A budget covering the dataset saturates every sketch, so the index's
    // estimates are exact and recall against the brute-force oracle must be
    // 1.0 — any miss is a correctness bug, not estimation noise.
    let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(2.0));
    let brute = BruteForceIndex::build(&dataset);

    let workload = QueryWorkload::sample_from_dataset(&dataset, 30, 42);
    let t_star = 0.9;
    let mut truth_total = 0usize;
    for (qi, query) in workload.queries.iter().enumerate() {
        let truth = brute.ground_truth(query, t_star);
        truth_total += truth.len();
        let answer: Vec<usize> = index
            .search(query.elements(), t_star)
            .iter()
            .map(|h| h.record_id)
            .collect();
        for id in &truth {
            assert!(
                answer.contains(id),
                "query {qi}: record {id} in ground truth but missed (recall < 1.0)"
            );
        }
    }
    // Queries are sampled from the dataset, so each one's own record is in
    // its ground truth: the assertion above cannot have been vacuous.
    assert!(truth_total >= workload.queries.len());
}

#[test]
fn quickstart_pipeline_is_accurate_at_paper_budget() {
    // The quickstart's actual configuration: 10% space budget, t* = 0.5.
    // Accuracy is checked end-to-end through the evaluation harness; the
    // bound is deliberately loose (the paper-scale comparisons live in the
    // benchmark binaries) but catches gross regressions.
    let dataset = smoke_dataset();
    let index = GbKmvIndex::build(&dataset, GbKmvConfig::with_space_fraction(0.10));

    let summary = index.summary();
    assert!(summary.space_used_fraction <= 0.12, "budget overrun");

    let workload = QueryWorkload::sample_from_dataset(&dataset, 30, 42);
    let truth = GroundTruth::compute(&dataset, &workload.queries, 0.5);
    let report = evaluate_index(
        &index,
        &workload.queries,
        &truth,
        0.5,
        dataset.total_elements(),
    );
    assert!(
        report.accuracy.f1 > 0.4,
        "F1 {} at 10% budget is far below expectations",
        report.accuracy.f1
    );
}
